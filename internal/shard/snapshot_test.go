package shard

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// TestSnapshotRoundTrip: a partitioned world written to per-shard
// snapshots and mmap-loaded back must answer bit-identically to the
// in-memory partition and to the single index, with the same counters.
func TestSnapshotRoundTrip(t *testing.T) {
	net, pois := tinyWorld(t, 42)
	w, err := Partition(net, pois, Config{Tiles: 4, Halo: 0.0012, CellSize: 0.0005, Compact: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	manifest := filepath.Join(dir, "city.shards.json")
	if err := WriteSnapshots(manifest, w); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadWorld(manifest)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := loaded.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if len(loaded.Shards) != len(w.Shards) {
		t.Fatalf("loaded %d shards, want %d", len(loaded.Shards), len(w.Shards))
	}

	q := goldenQuery()
	want, wantGS, err := NewCoordinator(w).TopK(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	got, gs, err := NewCoordinator(loaded).TopK(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if d := diffResults(got, want); d != "" {
		t.Errorf("snapshot round trip changed the answer: %s", d)
	}
	if gs.ShardsTotal != wantGS.ShardsTotal || gs.ShardsEvaluated != wantGS.ShardsEvaluated || gs.ShardsPruned != wantGS.ShardsPruned {
		t.Errorf("snapshot round trip changed counters: %+v vs %+v", gs, wantGS)
	}

	single, err := core.NewSlabIndex(net, pois, core.IndexConfig{CellSize: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := single.SOI(q)
	if err != nil {
		t.Fatal(err)
	}
	if d := diffResults(got, ref); d != "" {
		t.Errorf("loaded shards != single index: %s", d)
	}
}

// TestWriteSnapshotsRequiresCompact: a map-layout partition has no slab
// to persist and must be rejected with a clear error.
func TestWriteSnapshotsRequiresCompact(t *testing.T) {
	net, pois := tinyWorld(t, 1)
	w, err := Partition(net, pois, Config{Tiles: 2, Halo: 0.001, CellSize: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshots(filepath.Join(t.TempDir(), "m.json"), w); err == nil {
		t.Fatal("expected an error for a non-compact partition")
	}
}

// TestLoadWorldRejectsBadManifest covers the typed failure paths.
func TestLoadWorldRejectsBadManifest(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	if _, err := LoadWorld(path); err == nil {
		t.Error("missing manifest accepted")
	}
	os.WriteFile(path, []byte("{not json"), 0o644)
	if _, err := LoadWorld(path); err == nil {
		t.Error("malformed manifest accepted")
	}
	os.WriteFile(path, []byte(`{"version": 99, "shards": [{"file": "x.soi"}]}`), 0o644)
	if _, err := LoadWorld(path); err == nil {
		t.Error("wrong version accepted")
	}
	os.WriteFile(path, []byte(`{"version": 1, "shards": []}`), 0o644)
	if _, err := LoadWorld(path); err == nil {
		t.Error("empty shard list accepted")
	}
	os.WriteFile(path, []byte(`{"version": 1, "shards": [{"file": "absent.soi"}]}`), 0o644)
	if _, err := LoadWorld(path); err == nil {
		t.Error("missing shard file accepted")
	}
}
