package shard

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/remote"
)

// ErrShardsUnavailable marks a scatter-gather run that could not reach
// every shard it needed and was not allowed to degrade. Match it with
// errors.Is; the concrete value is always an *UnavailableError carrying
// the missing shard ids.
var ErrShardsUnavailable = errors.New("shard: required shards unavailable")

// UnavailableError reports which shards a non-degradable remote
// scatter-gather run could not reach, with a representative underlying
// failure. It maps itself to 503 through internal/httperr: shard
// unavailability is an availability fault the client may retry, never a
// bad request.
type UnavailableError struct {
	// Missing lists the unreachable shard ids, ascending.
	Missing []int
	// Last is a representative underlying failure.
	Last error
}

func (e *UnavailableError) Error() string {
	return fmt.Sprintf("shard: shards %v unavailable (last: %v)", e.Missing, e.Last)
}

func (e *UnavailableError) Unwrap() error { return e.Last }

// Is matches ErrShardsUnavailable.
func (e *UnavailableError) Is(target error) bool { return target == ErrShardsUnavailable }

// HTTPStatus maps shard unavailability to 503 (httperr.Statuser).
func (e *UnavailableError) HTTPStatus() int { return http.StatusServiceUnavailable }

// RemoteGather is GatherStats plus the degradation record of a remote
// scatter-gather run. A non-degraded remote answer is bit-identical to
// the single-process oracle; a degraded one is the exact top-k of the
// shards that answered, with MissingShards naming the gaps.
type RemoteGather struct {
	GatherStats
	// Degraded reports that at least one shard that could have
	// contributed to the top-k was unreachable, so the answer may be
	// missing streets. Shards that failed but were provably prunable at
	// their gather position do not degrade the answer.
	Degraded bool
	// MissingShards lists the unreachable shards behind Degraded,
	// ascending.
	MissingShards []int
}

// RemoteQuerier is the client surface the remote coordinator fans out
// through — implemented by remote.Client, and by in-process fakes in
// tests.
type RemoteQuerier interface {
	// Shards returns the number of shards addressed.
	Shards() int
	// Bound fetches shard's static unseen upper bound for q.
	Bound(ctx context.Context, shard int, q core.Query) (float64, error)
	// Query evaluates q on shard, returning global-id results.
	Query(ctx context.Context, shard int, q core.Query) (*remote.QueryResponse, error)
}

// RemoteCoordinator answers k-SOI queries by scatter-gather over shard
// servers in other processes. Its decision structure is a mirror of the
// in-process Coordinator — same (UB desc, shard id asc) gather order,
// same strict prune test, same tie-block merge — so any run in which
// every needed shard answers is bit-identical to the single-process
// oracle. What it adds is a failure model: shard calls go through a
// fault-tolerant client (retries, hedging, breakers, failover), and
// when a shard stays unreachable the run either fails with
// ErrShardsUnavailable (allowPartial=false) or degrades — merging what
// answered and tagging the result — instead of hanging or guessing.
type RemoteCoordinator struct {
	client RemoteQuerier
	halo   float64
}

// NewRemoteCoordinator wraps a shard client. halo is the partition's
// POI-replication halo (the largest ε answered exactly); pass 0 to skip
// the coordinator-side ε check and let shards enforce it.
func NewRemoteCoordinator(client RemoteQuerier, halo float64) *RemoteCoordinator {
	return &RemoteCoordinator{client: client, halo: halo}
}

// Halo returns the coordinator's ε ceiling (0 when unchecked).
func (c *RemoteCoordinator) Halo() float64 { return c.halo }

// ShardCount returns the number of shards the coordinator fans out to.
func (c *RemoteCoordinator) ShardCount() int { return c.client.Shards() }

// remoteRun is one shard's speculative remote evaluation.
type remoteRun struct {
	id     int
	ub     float64
	cancel context.CancelFunc
	done   chan struct{}
	resp   *remote.QueryResponse
	err    error
}

// permanentRemote reports an error that marks the request — not the
// shard — as broken: degradation must not hide it.
func permanentRemote(err error) bool {
	var pe *remote.PermanentError
	return errors.As(err, &pe)
}

// TopK runs the remote scatter-gather. With allowPartial=false the
// answer is all-or-nothing: every shard that cannot be pruned must
// answer, else ErrShardsUnavailable. With allowPartial=true unreachable
// shards degrade the answer instead: the merged top-k of the shards
// that answered, with gather.Degraded set and gather.MissingShards
// naming the gaps.
//
// Degradation is as precise as the prune proof allows: a shard whose
// bound never arrived always degrades (it might have mattered), but a
// shard that failed after its bound arrived only degrades if, at its
// position in the gather order, the merged LB_k did not already
// dominate its bound — a shard the oracle would have pruned cannot be
// missed. Failed shards contribute nothing to LB_k, so every later
// prune decision is conservative: a degraded answer is a subset of the
// oracle's candidates, never a wrong ranking of them.
func (c *RemoteCoordinator) TopK(ctx context.Context, q core.Query, allowPartial bool) ([]core.StreetResult, RemoteGather, error) {
	n := c.client.Shards()
	g := RemoteGather{GatherStats: GatherStats{ShardsTotal: n}}
	if err := q.Validate(); err != nil {
		return nil, g, err
	}
	if c.halo > 0 && q.Epsilon > c.halo {
		return nil, g, fmt.Errorf("%w: ε=%v > halo=%v", ErrEpsilonExceedsHalo, q.Epsilon, c.halo)
	}

	// Phase 1 — bounds, in parallel. A shard whose bound cannot be
	// fetched is missing from the gather order entirely: nothing proves
	// it prunable, so it always degrades (or fails the call).
	type boundOut struct {
		ub  float64
		err error
	}
	bounds := make([]boundOut, n)
	var bwg sync.WaitGroup
	for i := 0; i < n; i++ {
		bwg.Add(1)
		go func(i int) {
			defer bwg.Done()
			defer func() {
				if v := recover(); v != nil {
					bounds[i].err = &engine.PanicError{Value: v}
				}
			}()
			bounds[i].ub, bounds[i].err = c.client.Bound(ctx, i, q)
		}(i)
	}
	bwg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, g, err
	}

	var lastMiss error
	runs := make([]*remoteRun, 0, n)
	for i, b := range bounds {
		if b.err == nil {
			runs = append(runs, &remoteRun{id: i, ub: b.ub})
			continue
		}
		if permanentRemote(b.err) {
			// The shard answered decisively that the request is broken
			// (bad query, ε over its halo): a semantic error, never a
			// degradation candidate.
			return nil, g, &ShardError{Shard: i, Err: b.err}
		}
		g.MissingShards = append(g.MissingShards, i)
		lastMiss = &ShardError{Shard: i, Err: b.err}
	}
	if len(g.MissingShards) > 0 {
		g.Degraded = true
		if !allowPartial {
			return nil, g, &UnavailableError{Missing: g.MissingShards, Last: lastMiss}
		}
	}

	// (UB desc, shard id asc): the gather order the determinism proof
	// assumes, identical to the in-process coordinator.
	for i := 1; i < len(runs); i++ {
		for j := i; j > 0 && runs[j].ub > runs[j-1].ub; j-- {
			runs[j], runs[j-1] = runs[j-1], runs[j]
		}
	}

	// Phase 2 — speculative scatter. Shards with ub == 0 are skipped:
	// the gather loop prunes them at their position without ever needing
	// their evaluation, so the network call would be pure waste.
	var wg sync.WaitGroup
	for _, r := range runs {
		if r.ub == 0 {
			continue
		}
		r.done = make(chan struct{})
		sctx, cancel := context.WithCancel(ctx)
		r.cancel = cancel
		wg.Add(1)
		go func(r *remoteRun, sctx context.Context) {
			defer wg.Done()
			defer close(r.done)
			defer func() {
				if v := recover(); v != nil {
					r.err = &engine.PanicError{Value: v}
				}
			}()
			if err := faults.InjectCtx(sctx, SiteScatter); err != nil {
				r.err = err
				return
			}
			r.resp, r.err = c.client.Query(sctx, r.id, q)
		}(r, sctx)
	}
	defer func() {
		for _, r := range runs {
			if r.cancel != nil {
				r.cancel()
			}
		}
		wg.Wait()
	}()

	// Phase 3 — sequential gather over the fixed order, the same
	// decision loop as the in-process coordinator plus the degrade
	// branch.
	merged := make([]core.StreetResult, 0, q.K*2)
	kth := func() (float64, bool) {
		if len(merged) < q.K {
			return 0, false
		}
		return merged[q.K-1].Interest, true
	}
	var failure error
	for _, r := range runs {
		if err := faults.InjectCtx(ctx, SiteGather); err != nil {
			failure = err
			break
		}
		lbk, full := kth()
		if r.ub == 0 || (full && r.ub < lbk) {
			if r.cancel != nil {
				r.cancel()
			}
			g.ShardsPruned++
			continue
		}
		select {
		case <-r.done:
		case <-ctx.Done():
			failure = ctx.Err()
		}
		if failure != nil {
			break
		}
		if r.err != nil {
			if ctx.Err() != nil {
				failure = ctx.Err()
				break
			}
			if permanentRemote(r.err) {
				failure = &ShardError{Shard: r.id, Err: r.err}
				break
			}
			// The shard could have contributed (it survived the prune
			// test) but stayed unreachable through the client's whole
			// resilience stack. It adds nothing to LB_k, so later prunes
			// stay conservative.
			g.Degraded = true
			g.MissingShards = append(g.MissingShards, r.id)
			if !allowPartial {
				failure = &UnavailableError{Missing: g.MissingShards, Last: &ShardError{Shard: r.id, Err: r.err}}
				break
			}
			continue
		}
		g.ShardsEvaluated++
		foldStats(&g.Stats, r.resp.Stats)
		merged = append(merged, r.resp.Results...)
		core.SortResults(merged)
		if len(merged) > q.K {
			cut := q.K
			for cut < len(merged) && merged[cut].Interest == merged[q.K-1].Interest {
				cut++
			}
			merged = merged[:cut]
		}
	}
	sort.Ints(g.MissingShards)
	if failure != nil {
		return nil, g, failure
	}
	core.SortResults(merged)
	if len(merged) > q.K {
		merged = merged[:q.K]
	}
	return merged, g, nil
}
