package shard

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/remote"
	"repro/internal/stats"
)

// chaosMode is a per-shard switchable failure injected in front of a
// real shard server.
type chaosMode int32

const (
	chaosPass  chaosMode = iota
	chaos5xx             // answer 500 without evaluating
	chaosWedge           // swallow the request until the client gives up
)

// chaosProxy wraps one shard's handler with a runtime-switchable fault.
type chaosProxy struct {
	mode atomic.Int32
	next http.Handler
}

func (p *chaosProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch chaosMode(p.mode.Load()) {
	case chaos5xx:
		if r.URL.Path == "/shard/query" {
			http.Error(w, "injected 5xx", http.StatusInternalServerError)
			return
		}
	case chaosWedge:
		// Wedge every endpoint — including /readyz, so breaker probes see
		// the wedge too. Drain the body first or the server never notices
		// the client hanging up.
		_, _ = io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
		return
	}
	p.next.ServeHTTP(w, r)
}

// remoteHarness is a full cross-process-shaped serving stack in one
// test process: every shard behind a real HTTP server and a chaos
// proxy, one fault-tolerant client, one remote coordinator.
type remoteHarness struct {
	w       *World
	proxies []*chaosProxy
	servers []*httptest.Server
	rec     *stats.Recorder
	client  *remote.Client
	coord   *RemoteCoordinator
}

func newRemoteHarness(t *testing.T, tiles int, cfg remote.Config) *remoteHarness {
	t.Helper()
	net, pois := tinyWorld(t, 7)
	w, err := Partition(net, pois, Config{Tiles: tiles, Halo: 0.0012, CellSize: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	h := &remoteHarness{w: w, rec: stats.NewRecorder()}
	cfg.Addrs = make([][]string, len(w.Shards))
	for i, s := range w.Shards {
		p := &chaosProxy{next: remote.NewServer(remote.ShardData{
			ShardID: s.ID, Shards: len(w.Shards), TileX: s.TileX, TileY: s.TileY,
			Halo: w.Halo, CellSize: w.CellSize,
			Index: s.Index, Streets: s.Streets, Segments: s.Segments,
		}, remote.ServerConfig{})}
		hs := httptest.NewServer(p)
		t.Cleanup(hs.Close)
		h.proxies = append(h.proxies, p)
		h.servers = append(h.servers, hs)
		cfg.Addrs[i] = []string{hs.URL}
	}
	if cfg.Recorder == nil {
		cfg.Recorder = h.rec
	}
	h.client, err = remote.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.client.Close)
	h.coord = NewRemoteCoordinator(h.client, w.Halo)
	return h
}

// fastRemote is a client config with millisecond-scale failure
// resolution for chaos tests.
func fastRemote() remote.Config {
	return remote.Config{
		AttemptTimeout: 300 * time.Millisecond,
		MaxAttempts:    2,
		BackoffBase:    time.Millisecond,
		BackoffMax:     4 * time.Millisecond,
		DisableHedge:   true,
		Breaker:        remote.BreakerConfig{Failures: -1},
	}
}

// assertExactOrDegraded is the chaos invariant: the answer either is
// bit-identical to the oracle and untagged, or is tagged degraded and
// exactly the live shards' merged top-k. It also checks the counter
// partition. dead lists the shards the failure made unreachable.
func assertExactOrDegraded(t *testing.T, h *remoteHarness, q core.Query, oracle []core.StreetResult, got []core.StreetResult, g RemoteGather, dead map[int]bool) {
	t.Helper()
	if n := g.ShardsEvaluated + g.ShardsPruned + len(g.MissingShards); n != g.ShardsTotal {
		t.Errorf("counters do not partition: eval %d + pruned %d + missing %d != total %d",
			g.ShardsEvaluated, g.ShardsPruned, len(g.MissingShards), g.ShardsTotal)
	}
	if !g.Degraded {
		if len(g.MissingShards) != 0 {
			t.Errorf("untagged answer lists missing shards %v", g.MissingShards)
		}
		if d := diffResults(got, oracle); d != "" {
			t.Errorf("untagged answer diverged from oracle: %s", d)
		}
		return
	}
	for _, id := range g.MissingShards {
		if !dead[id] {
			t.Errorf("shard %d reported missing but was healthy", id)
		}
	}
	liveMerge := map[int]bool{}
	for _, id := range g.MissingShards {
		liveMerge[id] = true
	}
	want := chaosMergeLive(t, h.w, q, liveMerge)
	if d := diffResults(got, want); d != "" {
		t.Errorf("degraded answer is not the exact live merge: %s", d)
	}
}

// chaosMergeLive mirrors mergeLive for the harness world.
func chaosMergeLive(t *testing.T, w *World, q core.Query, dead map[int]bool) []core.StreetResult {
	t.Helper()
	return mergeLive(t, w, q, dead)
}

// TestRemoteChaosKillEachShard: for every shard, hard-kill its server
// (connection refused) and assert the invariant under both partial
// settings — plus full recovery once the shard returns.
func TestRemoteChaosKillEachShard(t *testing.T) {
	q := chaosQuery()
	h := newRemoteHarness(t, 4, fastRemote())
	oracle, _, err := h.coord.TopK(context.Background(), q, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range h.w.Shards {
		h.servers[i].CloseClientConnections()
		h.servers[i].Listener.Close() // refuse new connections, keep the URL

		before := runtime.NumGoroutine()
		got, g, err := h.coord.TopK(context.Background(), q, true)
		if err != nil {
			t.Fatalf("shard %d killed: partial call failed: %v", i, err)
		}
		if !g.Degraded {
			t.Fatalf("shard %d killed at bound phase but answer untagged", i)
		}
		assertExactOrDegraded(t, h, q, oracle, got, g, map[int]bool{i: true})

		if _, _, err := h.coord.TopK(context.Background(), q, false); !errors.Is(err, ErrShardsUnavailable) {
			t.Errorf("shard %d killed without partial: err = %v, want ErrShardsUnavailable", i, err)
		}
		checkNoLeaks(t, before)

		// Resurrect the shard on the same address for the next round.
		h.servers[i] = httptest.NewServer(h.proxies[i])
		t.Cleanup(h.servers[i].Close)
		// The address changed (fresh ephemeral port), so rebuild the
		// client table by swapping the harness to the new URL set.
		cfg := fastRemote()
		cfg.Recorder = h.rec
		cfg.Addrs = make([][]string, len(h.servers))
		for j, hs := range h.servers {
			cfg.Addrs[j] = []string{hs.URL}
		}
		h.client, err = remote.NewClient(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(h.client.Close)
		h.coord = NewRemoteCoordinator(h.client, h.w.Halo)

		got, g, err = h.coord.TopK(context.Background(), q, true)
		if err != nil {
			t.Fatalf("shard %d resurrected: %v", i, err)
		}
		if g.Degraded {
			t.Fatalf("shard %d resurrected but still degraded: %+v", i, g)
		}
		if d := diffResults(got, oracle); d != "" {
			t.Errorf("shard %d after recovery: %s", i, d)
		}
	}
}

// TestRemoteChaosInjected5xxEachShard: a shard answering 500 on every
// query must degrade exactly like a dead one — and recover instantly
// when the fault clears.
func TestRemoteChaosInjected5xxEachShard(t *testing.T) {
	q := chaosQuery()
	h := newRemoteHarness(t, 4, fastRemote())
	oracle, _, err := h.coord.TopK(context.Background(), q, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range h.w.Shards {
		h.proxies[i].mode.Store(int32(chaos5xx))
		got, g, err := h.coord.TopK(context.Background(), q, true)
		if err != nil {
			t.Fatalf("shard %d 5xx: %v", i, err)
		}
		if !g.Degraded {
			t.Fatalf("shard %d answering 500 but answer untagged", i)
		}
		assertExactOrDegraded(t, h, q, oracle, got, g, map[int]bool{i: true})
		h.proxies[i].mode.Store(int32(chaosPass))

		got, g, err = h.coord.TopK(context.Background(), q, true)
		if err != nil {
			t.Fatalf("shard %d healed: %v", i, err)
		}
		if g.Degraded {
			t.Fatalf("shard %d healed but still degraded", i)
		}
		if d := diffResults(got, oracle); d != "" {
			t.Errorf("shard %d after heal: %s", i, d)
		}
	}
}

// TestRemoteChaosWedgedShard: a shard that accepts connections and then
// never answers must be bounded by the attempt timeout and degrade —
// the coordinator may never hang on a wedged worker.
func TestRemoteChaosWedgedShard(t *testing.T) {
	q := chaosQuery()
	h := newRemoteHarness(t, 4, fastRemote())
	oracle, _, err := h.coord.TopK(context.Background(), q, false)
	if err != nil {
		t.Fatal(err)
	}
	h.proxies[1].mode.Store(int32(chaosWedge))
	start := time.Now()
	got, g, err := h.coord.TopK(context.Background(), q, true)
	if err != nil {
		t.Fatalf("wedged shard: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("wedged shard stalled the call for %v", elapsed)
	}
	if !g.Degraded {
		t.Fatal("wedged shard but answer untagged")
	}
	assertExactOrDegraded(t, h, q, oracle, got, g, map[int]bool{1: true})
	h.proxies[1].mode.Store(int32(chaosPass))
}

// TestRemoteChaosDropWithRetryStaysExact: transient drops on the
// network legs that resolve within the retry budget must leave the
// answer bit-identical and untagged — retries are invisible to
// correctness.
func TestRemoteChaosDropWithRetryStaysExact(t *testing.T) {
	defer faults.Reset()
	q := chaosQuery()
	cfg := fastRemote()
	cfg.MaxAttempts = 3
	h := newRemoteHarness(t, 4, cfg)
	oracle, _, err := h.coord.TopK(context.Background(), q, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, site := range []string{remote.SiteDial, remote.SiteSend, remote.SiteRecv} {
		faults.Reset()
		faults.Activate(site, faults.Fault{Err: errors.New("injected drop"), Times: 2})
		got, g, err := h.coord.TopK(context.Background(), q, false)
		if err != nil {
			t.Fatalf("site %s: drops within the retry budget failed the call: %v", site, err)
		}
		if g.Degraded {
			t.Errorf("site %s: retried drops degraded the answer", site)
		}
		if d := diffResults(got, oracle); d != "" {
			t.Errorf("site %s: retried drops changed the answer: %s", site, d)
		}
	}
	faults.Reset()
	if h.rec.Remote.Retries.Load() == 0 {
		t.Error("no retries recorded despite injected drops")
	}
}

// TestRemoteChaosLatencyStaysExact: injected latency on the network
// legs changes timing, never answers.
func TestRemoteChaosLatencyStaysExact(t *testing.T) {
	defer faults.Reset()
	q := chaosQuery()
	h := newRemoteHarness(t, 4, fastRemote())
	oracle, _, err := h.coord.TopK(context.Background(), q, false)
	if err != nil {
		t.Fatal(err)
	}
	faults.Activate(remote.SiteSend, faults.Fault{Delay: 30 * time.Millisecond, Times: 3})
	got, g, err := h.coord.TopK(context.Background(), q, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.Degraded {
		t.Error("latency degraded the answer")
	}
	if d := diffResults(got, oracle); d != "" {
		t.Errorf("latency changed the answer: %s", d)
	}
}

// TestRemoteChaosBreakerShieldsDeadShard: with breakers enabled, a dead
// shard's repeated failures trip its breaker, and subsequent degraded
// calls short-circuit instead of re-dialling a corpse.
func TestRemoteChaosBreakerShieldsDeadShard(t *testing.T) {
	q := chaosQuery()
	cfg := fastRemote()
	cfg.Breaker = remote.BreakerConfig{Failures: 2, OpenFor: 10 * time.Second}
	h := newRemoteHarness(t, 4, cfg)
	if _, _, err := h.coord.TopK(context.Background(), q, false); err != nil {
		t.Fatal(err)
	}
	h.servers[0].CloseClientConnections()
	h.servers[0].Listener.Close()

	// Drive calls until the breaker opens, then confirm short circuits.
	for i := 0; i < 3; i++ {
		if _, _, err := h.coord.TopK(context.Background(), q, true); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if h.rec.Remote.BreakerOpens.Load() == 0 {
		t.Fatal("dead shard never tripped its breaker")
	}
	sc := h.rec.Remote.BreakerShortCircuits.Load()
	if _, _, err := h.coord.TopK(context.Background(), q, true); err != nil {
		t.Fatal(err)
	}
	if h.rec.Remote.BreakerShortCircuits.Load() <= sc {
		t.Error("open breaker did not short-circuit the dead shard")
	}
}
