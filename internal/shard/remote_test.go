package shard

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/remote"
)

// fakeQuerier implements RemoteQuerier over an in-process world with
// per-shard failure switches — the coordinator's decision logic under a
// perfectly controllable network.
type fakeQuerier struct {
	w         *World
	failBound map[int]bool
	failQuery map[int]bool
}

var errFakeDown = errors.New("fake shard down")

func (f *fakeQuerier) Shards() int { return len(f.w.Shards) }

func (f *fakeQuerier) Bound(ctx context.Context, shard int, q core.Query) (float64, error) {
	if f.failBound[shard] {
		return 0, errFakeDown
	}
	return f.w.Shards[shard].Index.UnseenBound(q)
}

func (f *fakeQuerier) Query(ctx context.Context, shard int, q core.Query) (*remote.QueryResponse, error) {
	if f.failQuery[shard] {
		return nil, errFakeDown
	}
	s := f.w.Shards[shard]
	res, st, err := s.Index.SOIContext(ctx, q, core.CostAware, nil)
	if err != nil {
		return nil, err
	}
	out := &remote.QueryResponse{Shard: shard, Stats: st}
	out.UB, _ = s.Index.UnseenBound(q)
	out.Results = make([]core.StreetResult, len(res))
	for i, r := range res {
		r.Street = s.Streets[r.Street]
		r.BestSegment = s.Segments[r.BestSegment]
		out.Results[i] = r
	}
	return out, nil
}

// mergeLive computes the expected degraded answer: the exact merged
// top-k of every live shard's local evaluation.
func mergeLive(t *testing.T, w *World, q core.Query, dead map[int]bool) []core.StreetResult {
	t.Helper()
	var merged []core.StreetResult
	for _, s := range w.Shards {
		if dead[s.ID] {
			continue
		}
		res, _, err := s.Index.SOIContext(context.Background(), q, core.CostAware, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			r.Street = s.Streets[r.Street]
			r.BestSegment = s.Segments[r.BestSegment]
			merged = append(merged, r)
		}
	}
	core.SortResults(merged)
	if len(merged) > q.K {
		merged = merged[:q.K]
	}
	return merged
}

// TestRemoteCoordinatorMatchesInProcess: with every shard reachable the
// remote coordinator must be bit-identical to the in-process one —
// same results, same deterministic gather counters, no degradation.
func TestRemoteCoordinatorMatchesInProcess(t *testing.T) {
	for _, tiles := range []int{1, 2, 4, 9} {
		t.Run(fmt.Sprintf("tiles=%d", tiles), func(t *testing.T) {
			net, pois := tinyWorld(t, 7)
			w, err := Partition(net, pois, Config{Tiles: tiles, Halo: 0.0012, CellSize: 0.0005})
			if err != nil {
				t.Fatal(err)
			}
			q := core.Query{Keywords: []string{"shop", "food"}, K: 5, Epsilon: 0.0005}
			want, wantGS, err := NewCoordinator(w).TopK(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			rc := NewRemoteCoordinator(&fakeQuerier{w: w}, w.Halo)
			got, g, err := rc.TopK(context.Background(), q, false)
			if err != nil {
				t.Fatal(err)
			}
			if g.Degraded || len(g.MissingShards) != 0 {
				t.Fatalf("fully-reachable run degraded: %+v", g)
			}
			if d := diffResults(got, want); d != "" {
				t.Errorf("remote diverged from in-process: %s", d)
			}
			if g.ShardsTotal != wantGS.ShardsTotal || g.ShardsEvaluated != wantGS.ShardsEvaluated ||
				g.ShardsPruned != wantGS.ShardsPruned {
				t.Errorf("gather counters diverged: remote %+v, in-process %+v", g.GatherStats, wantGS)
			}
		})
	}
}

// TestRemoteCoordinatorSingleShardLossInvariant is the degradation
// contract, exhaustively: for every shard i and every failure phase
// (bound lost, query lost), the answer is either bit-identical to the
// oracle and untagged, or tagged degraded and exactly the merged top-k
// of the shards that answered. Never wrong, never hanging.
func TestRemoteCoordinatorSingleShardLossInvariant(t *testing.T) {
	net, pois := tinyWorld(t, 7)
	w, err := Partition(net, pois, Config{Tiles: 9, Halo: 0.0012, CellSize: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	q := core.Query{Keywords: []string{"shop", "food"}, K: 5, Epsilon: 0.0005}
	oracle, _, err := NewCoordinator(w).TopK(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	sawPrunedLoss := false
	for i := range w.Shards {
		for _, phase := range []string{"bound", "query"} {
			fq := &fakeQuerier{w: w, failBound: map[int]bool{}, failQuery: map[int]bool{}}
			if phase == "bound" {
				fq.failBound[i] = true
			} else {
				fq.failQuery[i] = true
			}
			rc := NewRemoteCoordinator(fq, w.Halo)
			got, g, err := rc.TopK(context.Background(), q, true)
			if err != nil {
				t.Fatalf("shard %d %s loss: %v", i, phase, err)
			}
			if got2 := g.ShardsEvaluated + g.ShardsPruned + len(g.MissingShards); got2 != g.ShardsTotal {
				t.Errorf("shard %d %s loss: counters do not partition: eval %d + pruned %d + missing %d != %d",
					i, phase, g.ShardsEvaluated, g.ShardsPruned, len(g.MissingShards), g.ShardsTotal)
			}
			if !g.Degraded {
				// The lost shard was provably prunable: the answer must be
				// the untouched oracle.
				sawPrunedLoss = true
				if len(g.MissingShards) != 0 {
					t.Errorf("shard %d %s loss: untagged but missing %v", i, phase, g.MissingShards)
				}
				if d := diffResults(got, oracle); d != "" {
					t.Errorf("shard %d %s loss: untagged answer diverged from oracle: %s", i, phase, d)
				}
				continue
			}
			if len(g.MissingShards) != 1 || g.MissingShards[0] != i {
				t.Errorf("shard %d %s loss: missing = %v, want [%d]", i, phase, g.MissingShards, i)
			}
			want := mergeLive(t, w, q, map[int]bool{i: true})
			if d := diffResults(got, want); d != "" {
				t.Errorf("shard %d %s loss: degraded answer is not the exact live merge: %s", i, phase, d)
			}

			// The same loss without the partial opt-in must refuse with the
			// typed 503, not serve the degraded answer silently.
			_, _, err = rc.TopK(context.Background(), q, false)
			if !errors.Is(err, ErrShardsUnavailable) {
				t.Errorf("shard %d %s loss without partial: err = %v, want ErrShardsUnavailable", i, phase, err)
			}
			var ue *UnavailableError
			if !errors.As(err, &ue) {
				t.Errorf("shard %d %s loss: error is not *UnavailableError", i, phase)
			} else if ue.HTTPStatus() != http.StatusServiceUnavailable {
				t.Errorf("shard %d %s loss: HTTPStatus = %d, want 503", i, phase, ue.HTTPStatus())
			}
		}
	}
	// Sanity: query-phase losses of prunable shards must actually occur
	// in this fixture, or the untagged branch is untested.
	if !sawPrunedLoss {
		t.Log("fixture note: no shard loss was prunable; untagged branch not exercised at tiles=9")
	}
}

// TestRemoteCoordinatorMultiShardLoss: losing several shards at once
// degrades with all of them listed, ascending.
func TestRemoteCoordinatorMultiShardLoss(t *testing.T) {
	net, pois := tinyWorld(t, 7)
	w, err := Partition(net, pois, Config{Tiles: 4, Halo: 0.0012, CellSize: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Shards) < 3 {
		t.Skip("fixture produced fewer than 3 shards")
	}
	q := core.Query{Keywords: []string{"shop", "food"}, K: 5, Epsilon: 0.0005}
	dead := map[int]bool{0: true, 2: true}
	fq := &fakeQuerier{w: w, failBound: map[int]bool{0: true}, failQuery: map[int]bool{2: true}}
	rc := NewRemoteCoordinator(fq, w.Halo)
	got, g, err := rc.TopK(context.Background(), q, true)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(g.MissingShards) {
		t.Errorf("missing shards not sorted: %v", g.MissingShards)
	}
	if g.Degraded {
		want := mergeLive(t, w, q, dead)
		if d := diffResults(got, want); d != "" {
			t.Errorf("multi-loss degraded answer wrong: %s", d)
		}
	}
	// All shards lost: an empty but well-formed degraded answer.
	all := &fakeQuerier{w: w, failBound: map[int]bool{}, failQuery: map[int]bool{}}
	for i := range w.Shards {
		all.failBound[i] = true
	}
	got, g, err = NewRemoteCoordinator(all, w.Halo).TopK(context.Background(), q, true)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Degraded || len(g.MissingShards) != len(w.Shards) || len(got) != 0 {
		t.Errorf("all-lost: got %d results, degraded=%v missing=%v", len(got), g.Degraded, g.MissingShards)
	}
}

// TestRemoteCoordinatorValidation: query validation and the ε ceiling
// fire before any network call.
func TestRemoteCoordinatorValidation(t *testing.T) {
	net, pois := tinyWorld(t, 7)
	w, err := Partition(net, pois, Config{Tiles: 2, Halo: 0.001, CellSize: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	rc := NewRemoteCoordinator(&fakeQuerier{w: w}, w.Halo)
	if _, _, err := rc.TopK(context.Background(), core.Query{Keywords: []string{"x"}, K: 0, Epsilon: 0.0005}, false); err == nil {
		t.Error("k=0 accepted")
	}
	_, _, err = rc.TopK(context.Background(), core.Query{Keywords: []string{"x"}, K: 5, Epsilon: 0.01}, false)
	if !errors.Is(err, ErrEpsilonExceedsHalo) {
		t.Errorf("ε>halo: err = %v, want ErrEpsilonExceedsHalo", err)
	}
}

// TestRemoteCoordinatorPermanentErrorNotDegraded: a shard answering
// with a permanent (4xx-class) error marks the request broken — it must
// fail the call even with partial allowed, not hide behind degradation.
func TestRemoteCoordinatorPermanentErrorNotDegraded(t *testing.T) {
	net, pois := tinyWorld(t, 7)
	w, err := Partition(net, pois, Config{Tiles: 2, Halo: 0.0012, CellSize: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	pq := &permanentQuerier{fakeQuerier{w: w}}
	rc := NewRemoteCoordinator(pq, w.Halo)
	q := core.Query{Keywords: []string{"shop"}, K: 5, Epsilon: 0.0005}
	_, _, err = rc.TopK(context.Background(), q, true)
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *ShardError wrapping the permanent error", err)
	}
	var pe *remote.PermanentError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v does not carry the *remote.PermanentError", err)
	}
}

// permanentQuerier fails every bound call with a permanent 400.
type permanentQuerier struct{ fakeQuerier }

func (p *permanentQuerier) Bound(ctx context.Context, shard int, q core.Query) (float64, error) {
	return 0, &remote.PermanentError{Status: http.StatusBadRequest, Msg: "broken request"}
}
