package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/photo"
	"repro/internal/snapshot"
)

// ManifestVersion is the on-disk manifest format version.
const ManifestVersion = 1

// ManifestShard describes one shard's snapshot file and its local→global
// id maps within a partitioned world.
type ManifestShard struct {
	// File is the shard snapshot's path, relative to the manifest.
	File  string `json:"file"`
	TileX int    `json:"tile_x"`
	TileY int    `json:"tile_y"`
	// Streets[local] / Segments[local] are the global ids, strictly
	// ascending (the property that preserves tie-breaks).
	Streets  []network.StreetID  `json:"streets"`
	Segments []network.SegmentID `json:"segments"`
}

// Manifest is the JSON sidecar tying a set of per-shard .soi snapshots
// back into one queryable world. The global bounds and halo are part of
// the format: the bounds pin every shard index to the same cell
// lattice, and the halo is the largest ε the partition answers exactly.
type Manifest struct {
	Version  int             `json:"version"`
	TilesX   int             `json:"tiles_x"`
	TilesY   int             `json:"tiles_y"`
	Halo     float64         `json:"halo"`
	CellSize float64         `json:"cell_size"`
	Bounds   [4]float64      `json:"bounds"` // min_x, min_y, max_x, max_y
	Shards   []ManifestShard `json:"shards"`
}

// WriteSnapshots persists a partitioned world: one snapshot file per
// shard next to the manifest at manifestPath. The world must have been
// partitioned with Compact set (each shard needs a slab). Shard files
// are named <base>.shard<N>.soi where <base> strips manifestPath's
// extension.
func WriteSnapshots(manifestPath string, w *World) error {
	base := strings.TrimSuffix(filepath.Base(manifestPath), filepath.Ext(manifestPath))
	dir := filepath.Dir(manifestPath)
	m := Manifest{
		Version:  ManifestVersion,
		TilesX:   w.TilesX,
		TilesY:   w.TilesY,
		Halo:     w.Halo,
		CellSize: w.CellSize,
		Bounds:   [4]float64{w.Bounds.MinX, w.Bounds.MinY, w.Bounds.MaxX, w.Bounds.MaxY},
	}
	for _, s := range w.Shards {
		six := s.Index.SlabIndex()
		if six == nil {
			return fmt.Errorf("shard: shard %d has no slab (partition with Compact to write snapshots)", s.ID)
		}
		file := fmt.Sprintf("%s.shard%d.soi", base, s.ID)
		snap := &snapshot.Snapshot{
			Net:  s.Net,
			POIs: s.POIs,
			// Shards serve k-SOI only; an empty photo corpus sharing the
			// dictionary satisfies the container's completeness contract.
			Photos: photo.NewBuilder(s.POIs.Dict()).Build(),
			Slab:   six.Slab(),
		}
		if err := snapshot.WriteFile(filepath.Join(dir, file), snap); err != nil {
			return fmt.Errorf("shard: writing shard %d: %w", s.ID, err)
		}
		m.Shards = append(m.Shards, ManifestShard{
			File:     file,
			TileX:    s.TileX,
			TileY:    s.TileY,
			Streets:  s.Streets,
			Segments: s.Segments,
		})
	}
	blob, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(manifestPath, append(blob, '\n'), 0o644)
}

// LoadManifest parses a manifest without opening any shard snapshots —
// what a coordinator serving over remote shards needs (bounds, halo,
// shard count) and what cmd/soishard reads before loading its one
// shard.
func LoadManifest(manifestPath string) (*Manifest, error) {
	blob, err := os.ReadFile(manifestPath)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("shard: parsing manifest %s: %w", manifestPath, err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("shard: manifest version %d, want %d", m.Version, ManifestVersion)
	}
	if len(m.Shards) == 0 {
		return nil, fmt.Errorf("shard: manifest %s lists no shards", manifestPath)
	}
	return &m, nil
}

// LoadShard mmaps exactly one shard of a partitioned world — the
// cross-process serving path, where each soishard process owns a single
// tile. It returns the shard, the parsed manifest (for the
// partition-level constants) and a closer releasing the mapping.
func LoadShard(manifestPath string, id int) (*Shard, *Manifest, io.Closer, error) {
	m, err := LoadManifest(manifestPath)
	if err != nil {
		return nil, nil, nil, err
	}
	if id < 0 || id >= len(m.Shards) {
		return nil, nil, nil, fmt.Errorf("shard: shard %d out of range [0,%d)", id, len(m.Shards))
	}
	ms := m.Shards[id]
	snap, mapping, err := snapshot.Open(filepath.Join(filepath.Dir(manifestPath), ms.File))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("shard: opening shard %d (%s): %w", id, ms.File, err)
	}
	ix, err := core.NewIndexFromSlab(snap.Net, snap.POIs, snap.Slab)
	if err != nil {
		mapping.Close()
		return nil, nil, nil, fmt.Errorf("shard: rebuilding shard %d index: %w", id, err)
	}
	if snap.Net.NumStreets() != len(ms.Streets) || snap.Net.NumSegments() != len(ms.Segments) {
		mapping.Close()
		return nil, nil, nil, fmt.Errorf("shard: shard %d manifest maps %d streets/%d segments, snapshot has %d/%d",
			id, len(ms.Streets), len(ms.Segments), snap.Net.NumStreets(), snap.Net.NumSegments())
	}
	return &Shard{
		ID:       id,
		TileX:    ms.TileX,
		TileY:    ms.TileY,
		Net:      snap.Net,
		POIs:     snap.POIs,
		Index:    ix,
		Streets:  ms.Streets,
		Segments: ms.Segments,
	}, m, mapping, nil
}

// LoadWorld mmaps every shard snapshot named by a manifest and rebuilds
// a queryable World. Close the world when no queries are in flight to
// release the mappings.
func LoadWorld(manifestPath string) (*World, error) {
	blob, err := os.ReadFile(manifestPath)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("shard: parsing manifest %s: %w", manifestPath, err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("shard: manifest version %d, want %d", m.Version, ManifestVersion)
	}
	if len(m.Shards) == 0 {
		return nil, fmt.Errorf("shard: manifest %s lists no shards", manifestPath)
	}
	dir := filepath.Dir(manifestPath)
	w := &World{
		Bounds:   geo.Rect{MinX: m.Bounds[0], MinY: m.Bounds[1], MaxX: m.Bounds[2], MaxY: m.Bounds[3]},
		TilesX:   m.TilesX,
		TilesY:   m.TilesY,
		Halo:     m.Halo,
		CellSize: m.CellSize,
	}
	for i, ms := range m.Shards {
		snap, mapping, err := snapshot.Open(filepath.Join(dir, ms.File))
		if err != nil {
			w.Close()
			return nil, fmt.Errorf("shard: opening shard %d (%s): %w", i, ms.File, err)
		}
		w.mappings = append(w.mappings, mapping)
		ix, err := core.NewIndexFromSlab(snap.Net, snap.POIs, snap.Slab)
		if err != nil {
			w.Close()
			return nil, fmt.Errorf("shard: rebuilding shard %d index: %w", i, err)
		}
		if snap.Net.NumStreets() != len(ms.Streets) || snap.Net.NumSegments() != len(ms.Segments) {
			w.Close()
			return nil, fmt.Errorf("shard: shard %d manifest maps %d streets/%d segments, snapshot has %d/%d",
				i, len(ms.Streets), len(ms.Segments), snap.Net.NumStreets(), snap.Net.NumSegments())
		}
		w.Shards = append(w.Shards, &Shard{
			ID:       i,
			TileX:    ms.TileX,
			TileY:    ms.TileY,
			Net:      snap.Net,
			POIs:     snap.POIs,
			Index:    ix,
			Streets:  ms.Streets,
			Segments: ms.Segments,
		})
	}
	return w, nil
}
