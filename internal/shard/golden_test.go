package shard

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/network"
)

// goldenEntry pins one ranked result bit-exactly.
type goldenEntry struct {
	street       network.StreetID
	name         string
	interestBits uint64
	bestSegment  network.SegmentID
	massBits     uint64
}

// The seed-42 Tinytown golden: Ψ={shop,food}, k=5, ε=0.0005, cell
// 0.0005, halo 0.0012. The ranking is identical at every shard count —
// that is the point — while the early-termination counters depend only
// on the partition, never on gather timing. "East-West Avenue 2"
// (street 1) spans the full city width, so at every tiling it straddles
// tile borders and its mass depends on halo-replicated POIs.
var goldenRanking = []goldenEntry{
	{14, "Neue Schönhauser Straße", 0x417d4518223c5f4a, 106, 0x4055c00000000000},
	{18, "Münzstraße", 0x417bc9e794de8efe, 129, 0x4051000000000000},
	{1, "Tinytown East-West Avenue 2", 0x416e0996955d642d, 14, 0x4045000000000000},
	{7, "Tinytown Diagonal 1", 0x4161c9d8beb2dfc0, 60, 0x4043800000000000},
	{0, "Tinytown East-West Avenue 1", 0x41615cd50719c305, 6, 0x4033000000000000},
}

// goldenCounters pins the deterministic scatter-gather accounting per
// shard count (empty tiles produce no shard, so 9 tiles → 6 shards).
var goldenCounters = map[int]GatherStats{
	2: {ShardsTotal: 2, ShardsEvaluated: 1, ShardsPruned: 1},
	4: {ShardsTotal: 4, ShardsEvaluated: 2, ShardsPruned: 2},
	9: {ShardsTotal: 6, ShardsEvaluated: 4, ShardsPruned: 2},
}

func goldenQuery() core.Query {
	return core.Query{Keywords: []string{"shop", "food"}, K: 5, Epsilon: 0.0005}
}

// TestGoldenShardBoundary pins the shard-boundary contract on a fixed
// world: identical ranked ids and Float64bits scores at 2, 4 and 9
// tiles, and pinned early-termination counters. Each configuration runs
// repeatedly so a gather-order or scheduling dependence would flake
// loudly rather than pass silently.
func TestGoldenShardBoundary(t *testing.T) {
	net, pois := tinyWorld(t, 42)
	for tiles, wantGS := range goldenCounters {
		w, err := Partition(net, pois, Config{Tiles: tiles, Halo: 0.0012, CellSize: 0.0005})
		if err != nil {
			t.Fatalf("tiles=%d: %v", tiles, err)
		}
		coord := NewCoordinator(w)
		for run := 0; run < 10; run++ {
			got, gs, err := coord.TopK(context.Background(), goldenQuery())
			if err != nil {
				t.Fatalf("tiles=%d run=%d: %v", tiles, run, err)
			}
			if len(got) != len(goldenRanking) {
				t.Fatalf("tiles=%d run=%d: %d results, want %d", tiles, run, len(got), len(goldenRanking))
			}
			for i, want := range goldenRanking {
				g := got[i]
				if g.Street != want.street || g.Name != want.name || g.BestSegment != want.bestSegment {
					t.Errorf("tiles=%d rank %d: got street=%d name=%q seg=%d, want street=%d name=%q seg=%d",
						tiles, i, g.Street, g.Name, g.BestSegment, want.street, want.name, want.bestSegment)
				}
				if math.Float64bits(g.Interest) != want.interestBits {
					t.Errorf("tiles=%d rank %d: interest bits %#x, want %#x", tiles, i, math.Float64bits(g.Interest), want.interestBits)
				}
				if math.Float64bits(g.Mass) != want.massBits {
					t.Errorf("tiles=%d rank %d: mass bits %#x, want %#x", tiles, i, math.Float64bits(g.Mass), want.massBits)
				}
			}
			if gs.ShardsTotal != wantGS.ShardsTotal || gs.ShardsEvaluated != wantGS.ShardsEvaluated || gs.ShardsPruned != wantGS.ShardsPruned {
				t.Errorf("tiles=%d run=%d: counters total=%d eval=%d pruned=%d, want total=%d eval=%d pruned=%d",
					tiles, run, gs.ShardsTotal, gs.ShardsEvaluated, gs.ShardsPruned,
					wantGS.ShardsTotal, wantGS.ShardsEvaluated, wantGS.ShardsPruned)
			}
		}
	}
}

// TestGoldenBorderStraddle proves the golden top-k actually exercises
// the halo machinery: street 1 crosses tile borders at every tested
// tiling (its bbox spans more than one tile column), so its exact mass
// needs POIs replicated from neighbouring tiles.
func TestGoldenBorderStraddle(t *testing.T) {
	net, pois := tinyWorld(t, 42)
	for _, tiles := range []int{2, 4, 9} {
		w, err := Partition(net, pois, Config{Tiles: tiles, Halo: 0.0012, CellSize: 0.0005})
		if err != nil {
			t.Fatal(err)
		}
		gx := w.TilesX
		tileW := w.Bounds.Width() / float64(gx)
		b := net.StreetBounds(1)
		lo := int((b.MinX - w.Bounds.MinX) / tileW)
		hi := int((b.MaxX - w.Bounds.MinX) / tileW)
		if hi >= gx {
			hi = gx - 1
		}
		if lo == hi {
			t.Errorf("tiles=%d: golden street 1 fits one tile column [%d,%d]; world no longer exercises the border", tiles, lo, hi)
		}
	}
}
