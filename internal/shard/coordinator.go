package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faults"
)

// Fault-injection sites for the chaos suites (internal/faults).
const (
	// SiteScatter fires once per shard evaluation goroutine, before the
	// shard's k-SOI run.
	SiteScatter = "shard.scatter"
	// SiteGather fires once per shard in the gather loop, before the
	// prune-or-wait decision.
	SiteGather = "shard.gather"
)

// ErrEpsilonExceedsHalo rejects queries whose radius is larger than the
// world's POI replication halo: border streets could miss mass from
// points replicated into neighbouring shards only, so exactness would
// be silently lost. Rebuild the partition with a larger halo instead.
var ErrEpsilonExceedsHalo = errors.New("shard: query epsilon exceeds partition halo")

// ShardError wraps a failure of one shard's evaluation with the shard id.
type ShardError struct {
	Shard int
	Err   error
}

func (e *ShardError) Error() string { return fmt.Sprintf("shard %d: %v", e.Shard, e.Err) }

func (e *ShardError) Unwrap() error { return e.Err }

// GatherStats reports how the scatter-gather run spent its shards. The
// counters are deterministic: they depend only on the query and the
// partition, never on goroutine scheduling (see Coordinator.TopK).
type GatherStats struct {
	// ShardsTotal is the number of shards in the world.
	ShardsTotal int
	// ShardsEvaluated counts shards whose k-SOI results were merged.
	ShardsEvaluated int
	// ShardsPruned counts shards terminated early because the merged
	// global LBk strictly dominated their upper bound (or their bound
	// was zero), without waiting for — or using — their evaluation.
	ShardsPruned int
	// Stats folds the Algorithm 1 work counters of every merged shard.
	Stats core.Stats
}

// Coordinator answers k-SOI queries over a partitioned world by
// scatter-gather, bit-identically to a single index over the whole
// dataset.
type Coordinator struct {
	world *World
	// order holds shard indices sorted by (initial UB desc, shard id
	// asc) per query; recomputed each call since UB depends on Ψ and ε.
}

// NewCoordinator wraps a partitioned world.
func NewCoordinator(w *World) *Coordinator { return &Coordinator{world: w} }

// World returns the underlying partitioned world.
func (c *Coordinator) World() *World { return c.world }

// shardRun is one shard's speculative evaluation.
type shardRun struct {
	shard   *Shard
	ub      float64
	cancel  context.CancelFunc
	done    chan struct{}
	results []core.StreetResult
	stats   core.Stats
	err     error
}

// TopK runs Algorithm 1 on every shard that can still matter and merges
// the per-shard rankings into the global top-k.
//
// Determinism: shards are ordered by (initial upper bound desc, shard
// id asc) and the gather loop walks that order sequentially, deciding
// prune-or-merge for shard i before looking at shard i+1. Evaluations
// run speculatively in parallel, but because the decision sequence
// ⟨LB_k after 0 merges, after 1 merge, …⟩ is a pure function of the
// query and the partition, the pruned set — and with it GatherStats —
// is identical regardless of which goroutine finishes first. Pruning
// uses the strict test UB_i < LB_k of the paper (plus UB_i = 0 for
// shards with no query-relevant mass): a shard tying the bound is still
// evaluated, exactly as Algorithm 1 keeps draining ties at UB = LBk, so
// equal-interest streets beyond position k are ranked by the same
// (interest desc, id asc) order the single index uses.
//
// Every launched goroutine is joined before TopK returns, on success,
// error and cancellation paths alike — no leaks, no writes after return.
func (c *Coordinator) TopK(ctx context.Context, q core.Query) ([]core.StreetResult, GatherStats, error) {
	gs := GatherStats{ShardsTotal: len(c.world.Shards)}
	if err := q.Validate(); err != nil {
		return nil, gs, err
	}
	if q.Epsilon > c.world.Halo {
		return nil, gs, fmt.Errorf("%w: ε=%v > halo=%v", ErrEpsilonExceedsHalo, q.Epsilon, c.world.Halo)
	}

	// Static per-shard upper bounds from the untouched source lists.
	runs := make([]*shardRun, 0, len(c.world.Shards))
	for _, s := range c.world.Shards {
		ub, err := s.Index.UnseenBound(q)
		if err != nil {
			return nil, gs, &ShardError{Shard: s.ID, Err: err}
		}
		runs = append(runs, &shardRun{shard: s, ub: ub})
	}
	// (UB desc, shard id asc): the gather order the decision proof
	// assumes. Insertion sort keeps it allocation-free and stable-by-id
	// because runs start in ascending shard id order.
	for i := 1; i < len(runs); i++ {
		for j := i; j > 0 && runs[j].ub > runs[j-1].ub; j-- {
			runs[j], runs[j-1] = runs[j-1], runs[j]
		}
	}

	// Scatter: launch every shard speculatively with its own cancel.
	var wg sync.WaitGroup
	for _, r := range runs {
		r.done = make(chan struct{})
		sctx, cancel := context.WithCancel(ctx)
		r.cancel = cancel
		wg.Add(1)
		go func(r *shardRun, sctx context.Context) {
			defer wg.Done()
			defer close(r.done)
			defer func() {
				if v := recover(); v != nil {
					r.err = &engine.PanicError{Value: v}
				}
			}()
			if err := faults.InjectCtx(sctx, SiteScatter); err != nil {
				r.err = err
				return
			}
			r.results, r.stats, r.err = r.shard.Index.SOIContext(sctx, q, core.CostAware, nil)
		}(r, sctx)
	}
	// Join everything before returning, whatever path exits.
	defer func() {
		for _, r := range runs {
			r.cancel()
		}
		wg.Wait()
	}()

	// Gather: sequential decision loop over the fixed order.
	merged := make([]core.StreetResult, 0, q.K*2)
	kth := func() (float64, bool) {
		if len(merged) < q.K {
			return 0, false
		}
		return merged[q.K-1].Interest, true
	}
	var failure error
	for _, r := range runs {
		if err := faults.InjectCtx(ctx, SiteGather); err != nil {
			failure = err
			break
		}
		lbk, full := kth()
		if r.ub == 0 || (full && r.ub < lbk) {
			// No street of this shard can enter the top-k: its bound is
			// strictly below the already-guaranteed kth interest (or it
			// has no query-relevant mass at all). Cancel and move on
			// without waiting.
			r.cancel()
			gs.ShardsPruned++
			continue
		}
		select {
		case <-r.done:
		case <-ctx.Done():
			failure = ctx.Err()
		}
		if failure != nil {
			break
		}
		if r.err != nil {
			failure = &ShardError{Shard: r.shard.ID, Err: r.err}
			break
		}
		gs.ShardsEvaluated++
		foldStats(&gs.Stats, r.stats)
		for _, res := range r.results {
			res.Street = r.shard.Streets[res.Street]
			res.BestSegment = r.shard.Segments[res.BestSegment]
			merged = append(merged, res)
		}
		core.SortResults(merged)
		if len(merged) > q.K {
			// Keep the top k plus the tie block at position k: a later
			// shard result tying the kth interest must still be ranked
			// against these by street id, exactly like the single
			// index's strict tie drain.
			cut := q.K
			for cut < len(merged) && merged[cut].Interest == merged[q.K-1].Interest {
				cut++
			}
			merged = merged[:cut]
		}
	}
	if failure != nil {
		return nil, gs, failure
	}
	core.SortResults(merged)
	if len(merged) > q.K {
		merged = merged[:q.K]
	}
	return merged, gs, nil
}

// foldStats accumulates one shard's Algorithm 1 counters.
func foldStats(dst *core.Stats, s core.Stats) {
	dst.BuildListsTime += s.BuildListsTime
	dst.FilterTime += s.FilterTime
	dst.RefineTime += s.RefineTime
	dst.CellAccesses += s.CellAccesses
	dst.SegmentAccesses += s.SegmentAccesses
	dst.SL2Accesses += s.SL2Accesses
	dst.SL3Accesses += s.SL3Accesses
	dst.FilterIterations += s.FilterIterations
	dst.CellVisits += s.CellVisits
	dst.SegmentCacheHits += s.SegmentCacheHits
	dst.SegmentsSeen += s.SegmentsSeen
	dst.SegmentsFinal += s.SegmentsFinal
	dst.RefineDrained += s.RefineDrained
	dst.TotalSegments += s.TotalSegments
	dst.TotalCells += s.TotalCells
}
