// Package benchfmt defines the fixed-schema JSON benchmark artifact
// (BENCH_*.json) that soibench -json emits and CI archives. The schema
// is committed next to the code (schema.json, embedded below) and every
// artifact is validated against it both when written and in tests, so
// the file format cannot drift silently: adding, removing or renaming a
// field without updating the schema fails the build's schema test, and
// downstream tooling that tracks benchmark trends can rely on the keys.
package benchfmt

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// SchemaVersion is the current artifact schema version; bump it together
// with schema.json whenever the layout changes. Version 2 added the
// sharded scatter-gather comparison (single/sharded metrics and shard
// pruning counters); version 3 adds the cross-process remote comparison
// (remote metrics plus the client's retry/hedge/breaker counters).
// Older artifacts remain valid — the per-layout metric blocks are all
// optional.
const SchemaVersion = 3

// SchemaJSON is the committed JSON Schema the artifacts conform to.
//
//go:embed schema.json
var SchemaJSON []byte

// Metrics are the per-layout measurements of one benchmarked world.
type Metrics struct {
	// QPS is sequential query throughput (queries per second).
	QPS float64 `json:"qps"`
	// NsPerQuery is the mean wall time per query in nanoseconds.
	NsPerQuery float64 `json:"ns_per_query"`
	// AllocsPerQuery is the mean heap allocation count per query.
	AllocsPerQuery float64 `json:"allocs_per_query"`
	// BytesPerQuery is the mean heap bytes allocated per query.
	BytesPerQuery float64 `json:"bytes_per_query"`
}

// World is the layout comparison over one benchmarked dataset. Exactly
// one comparison pair is populated per world: Map/Slab for the
// map-vs-slab index benchmark, Single/Sharded for the single-index
// vs scatter-gather coordinator benchmark. The ratio fields always
// compare baseline over contender (baseline = Map or Single).
type World struct {
	Name     string `json:"name"`
	Streets  int    `json:"streets"`
	Segments int    `json:"segments"`
	POIs     int    `json:"pois"`
	// Map and Slab measure the identical workload on the two index
	// layouts (map-vs-slab benchmark).
	Map  *Metrics `json:"map,omitempty"`
	Slab *Metrics `json:"slab,omitempty"`
	// Single and Sharded measure the identical workload on one slab
	// index vs the sharded scatter-gather coordinator.
	Single  *Metrics `json:"single,omitempty"`
	Sharded *Metrics `json:"sharded,omitempty"`
	// Live measures the read workload while a writer streams POIs
	// through the epoch-based ingest path (ingest benchmark; the
	// baseline quiescent read pass is in Single). Ingest carries the
	// write-side measurements of the same run. Both blocks are optional
	// additions within schema version 2 — v1 and earlier v2 artifacts
	// remain valid.
	Live   *Metrics     `json:"live,omitempty"`
	Ingest *IngestBench `json:"ingest,omitempty"`
	// Remote measures the same workload through the cross-process
	// scatter-gather path: every shard behind a loopback HTTP server,
	// gathered by the fault-tolerant remote client (remote benchmark;
	// the in-process baseline is in Single). RemoteNet carries the
	// client's fault-tolerance counters over the measured workload.
	// Both are schema-version-3 additions; older artifacts stay valid.
	Remote    *Metrics        `json:"remote,omitempty"`
	RemoteNet *RemoteNetBench `json:"remote_net,omitempty"`
	// Shard early-termination counters summed over the sharded
	// workload (sharded benchmark only).
	ShardsTotal     int `json:"shards_total,omitempty"`
	ShardsEvaluated int `json:"shards_evaluated,omitempty"`
	ShardsPruned    int `json:"shards_pruned,omitempty"`
	// Speedup is baseline NsPerQuery / contender NsPerQuery.
	Speedup float64 `json:"speedup"`
	// AllocReduction is baseline AllocsPerQuery / contender
	// AllocsPerQuery (capped at the baseline count when the contender
	// reaches zero).
	AllocReduction float64 `json:"alloc_reduction"`
}

// IngestBench is the write-side measurement block of the mixed
// read/write ingest benchmark: how many POIs the writer streamed, how
// many epochs it published and compacted, and the cost of doing so while
// the read workload ran.
type IngestBench struct {
	// Writes is the number of POIs appended to the delta log.
	Writes int `json:"writes"`
	// Publishes and Compactions count the installed epochs by kind.
	Publishes   int `json:"publishes"`
	Compactions int `json:"compactions"`
	// FinalEpoch is the serving epoch sequence when the run ended.
	FinalEpoch int `json:"final_epoch"`
	// WriteQPS is appended POIs per second of mixed-run wall time.
	WriteQPS float64 `json:"write_qps"`
	// PublishMsMean is the mean wall time of one publish in milliseconds.
	PublishMsMean float64 `json:"publish_ms_mean"`
}

// RemoteNetBench summarizes the remote client's fault-tolerance
// machinery over the measured workload: how many logical calls it made,
// how many HTTP attempts they expanded into, and how often the retry,
// hedge and circuit-breaker paths fired. A clean loopback run shows
// attempts == calls + hedges_started and zero retries, errors and
// degraded gathers; anything else flags an unhealthy measurement
// environment.
type RemoteNetBench struct {
	// Calls is the number of logical shard calls (bounds + queries).
	Calls int64 `json:"calls"`
	// Attempts is the number of HTTP attempts those calls expanded into.
	Attempts int64 `json:"attempts"`
	// Retries counts re-attempts after a failed round.
	Retries int64 `json:"retries"`
	// HedgesStarted counts speculative duplicate attempts launched.
	HedgesStarted int64 `json:"hedges_started"`
	// BreakerOpens counts circuit-breaker trips.
	BreakerOpens int64 `json:"breaker_opens"`
	// Errors counts calls that exhausted every recovery path.
	Errors int64 `json:"errors"`
	// Degraded counts gathers that returned a partial answer.
	Degraded int64 `json:"degraded"`
}

// Report is one BENCH_*.json document.
type Report struct {
	SchemaVersion int     `json:"schema_version"`
	Bench         string  `json:"bench"`
	GoVersion     string  `json:"go_version"`
	Scale         float64 `json:"scale"`
	Seed          int64   `json:"seed"`
	Queries       int     `json:"queries"`
	// Shards and Tenants describe the sharded workload shape (0 and
	// omitted for the map-vs-slab benchmark).
	Shards  int     `json:"shards,omitempty"`
	Tenants int     `json:"tenants,omitempty"`
	Worlds  []World `json:"worlds"`
}

// Encode validates the report against the committed schema and renders
// it as indented JSON with a trailing newline.
func (r *Report) Encode() ([]byte, error) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	buf = append(buf, '\n')
	if err := Validate(buf); err != nil {
		return nil, fmt.Errorf("benchfmt: report violates its own schema: %w", err)
	}
	return buf, nil
}

// WriteFile encodes and writes the report.
func (r *Report) WriteFile(path string) error {
	buf, err := r.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// Decode parses and schema-validates an artifact.
func Decode(data []byte) (*Report, error) {
	if err := Validate(data); err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	return &r, nil
}

// Validate checks an artifact against the embedded schema. It implements
// the subset of JSON Schema the schema file uses — type, properties,
// required, additionalProperties, items, minimum and #/definitions
// references — which keeps the checked-in schema authoritative without
// pulling in a schema-validator dependency.
func Validate(data []byte) error {
	var schema map[string]any
	if err := json.Unmarshal(SchemaJSON, &schema); err != nil {
		return fmt.Errorf("benchfmt: embedded schema is invalid: %w", err)
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("benchfmt: artifact is not JSON: %w", err)
	}
	return validate(doc, schema, schema, "$")
}

func validate(doc any, schema, root map[string]any, path string) error {
	if ref, ok := schema["$ref"].(string); ok {
		resolved, err := resolveRef(ref, root)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		return validate(doc, resolved, root, path)
	}
	typ, _ := schema["type"].(string)
	switch typ {
	case "object":
		obj, ok := doc.(map[string]any)
		if !ok {
			return fmt.Errorf("%s: got %T, want object", path, doc)
		}
		props, _ := schema["properties"].(map[string]any)
		if req, ok := schema["required"].([]any); ok {
			for _, r := range req {
				name, _ := r.(string)
				if _, present := obj[name]; !present {
					return fmt.Errorf("%s: missing required field %q", path, name)
				}
			}
		}
		if extra, ok := schema["additionalProperties"].(bool); ok && !extra {
			for k := range obj {
				if _, known := props[k]; !known {
					return fmt.Errorf("%s: unknown field %q", path, k)
				}
			}
		}
		for k, v := range obj {
			sub, ok := props[k].(map[string]any)
			if !ok {
				continue
			}
			if err := validate(v, sub, root, path+"."+k); err != nil {
				return err
			}
		}
		return nil
	case "array":
		arr, ok := doc.([]any)
		if !ok {
			return fmt.Errorf("%s: got %T, want array", path, doc)
		}
		items, ok := schema["items"].(map[string]any)
		if !ok {
			return nil
		}
		for i, v := range arr {
			if err := validate(v, items, root, fmt.Sprintf("%s[%d]", path, i)); err != nil {
				return err
			}
		}
		return nil
	case "string":
		if _, ok := doc.(string); !ok {
			return fmt.Errorf("%s: got %T, want string", path, doc)
		}
		return nil
	case "number", "integer":
		n, ok := doc.(float64)
		if !ok {
			return fmt.Errorf("%s: got %T, want %s", path, doc, typ)
		}
		if typ == "integer" && n != float64(int64(n)) {
			return fmt.Errorf("%s: %v is not an integer", path, n)
		}
		if min, ok := schema["minimum"].(float64); ok && n < min {
			return fmt.Errorf("%s: %v below minimum %v", path, n, min)
		}
		return nil
	case "":
		return nil
	default:
		return fmt.Errorf("%s: schema uses unsupported type %q", path, typ)
	}
}

func resolveRef(ref string, root map[string]any) (map[string]any, error) {
	const prefix = "#/"
	if !strings.HasPrefix(ref, prefix) {
		return nil, fmt.Errorf("unsupported $ref %q", ref)
	}
	node := any(root)
	for _, step := range strings.Split(ref[len(prefix):], "/") {
		obj, ok := node.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("$ref %q: %q is not an object", ref, step)
		}
		if node, ok = obj[step]; !ok {
			return nil, fmt.Errorf("$ref %q: %q not found", ref, step)
		}
	}
	obj, ok := node.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("$ref %q resolves to a non-object", ref)
	}
	return obj, nil
}
