package benchfmt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleReport() *Report {
	m := Metrics{QPS: 15000, NsPerQuery: 66000, AllocsPerQuery: 275, BytesPerQuery: 30160}
	s := Metrics{QPS: 90000, NsPerQuery: 11000, AllocsPerQuery: 0, BytesPerQuery: 59}
	return &Report{
		SchemaVersion: SchemaVersion,
		Bench:         "slab-vs-map",
		GoVersion:     "go1.24.0",
		Scale:         0.25,
		Seed:          1,
		Queries:       150,
		Worlds: []World{{
			Name: "London", Streets: 1200, Segments: 5400, POIs: 80000,
			Map: &m, Slab: &s, Speedup: 6, AllocReduction: 275,
		}},
	}
}

func sampleShardedReport() *Report {
	single := Metrics{QPS: 9000, NsPerQuery: 110000, AllocsPerQuery: 12, BytesPerQuery: 900}
	sharded := Metrics{QPS: 11000, NsPerQuery: 90000, AllocsPerQuery: 40, BytesPerQuery: 3100}
	return &Report{
		SchemaVersion: SchemaVersion,
		Bench:         "sharded-scatter-gather",
		GoVersion:     "go1.24.0",
		Scale:         0.25,
		Seed:          1,
		Queries:       150,
		Shards:        4,
		Tenants:       2,
		Worlds: []World{{
			Name: "London", Streets: 1200, Segments: 5400, POIs: 80000,
			Single: &single, Sharded: &sharded,
			ShardsTotal: 600, ShardsEvaluated: 410, ShardsPruned: 190,
			Speedup: 1.22, AllocReduction: 0.3,
		}},
	}
}

func sampleRemoteReport() *Report {
	single := Metrics{QPS: 9000, NsPerQuery: 110000, AllocsPerQuery: 12, BytesPerQuery: 900}
	rem := Metrics{QPS: 800, NsPerQuery: 1250000, AllocsPerQuery: 900, BytesPerQuery: 91000}
	return &Report{
		SchemaVersion: SchemaVersion,
		Bench:         "remote-scatter-gather",
		GoVersion:     "go1.24.0",
		Scale:         0.25,
		Seed:          1,
		Queries:       150,
		Shards:        4,
		Worlds: []World{{
			Name: "London", Streets: 1200, Segments: 5400, POIs: 80000,
			Single: &single, Remote: &rem,
			RemoteNet:   &RemoteNetBench{Calls: 1200, Attempts: 1203, Retries: 3},
			ShardsTotal: 600, ShardsEvaluated: 410, ShardsPruned: 190,
			Speedup: 0.09, AllocReduction: 0.013,
		}},
	}
}

func TestReportRoundTrip(t *testing.T) {
	for name, r := range map[string]*Report{
		"slab-vs-map": sampleReport(),
		"sharded":     sampleShardedReport(),
		"remote":      sampleRemoteReport(),
	} {
		buf, err := r.Encode()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("%s round trip differs:\n got %+v\nwant %+v", name, got, r)
		}
	}
}

// TestSchemaRejects feeds structurally broken artifacts through the
// validator; each mutation must be caught by the committed schema.
func TestSchemaRejects(t *testing.T) {
	valid, err := sampleReport().Encode()
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(m map[string]any)) []byte {
		var m map[string]any
		if err := json.Unmarshal(valid, &m); err != nil {
			t.Fatal(err)
		}
		f(m)
		buf, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	world := func(m map[string]any) map[string]any {
		return m["worlds"].([]any)[0].(map[string]any)
	}
	cases := map[string][]byte{
		"not json":          []byte("{"),
		"missing bench":     mutate(func(m map[string]any) { delete(m, "bench") }),
		"unknown field":     mutate(func(m map[string]any) { m["extra"] = 1 }),
		"string version":    mutate(func(m map[string]any) { m["schema_version"] = "1" }),
		"float queries":     mutate(func(m map[string]any) { m["queries"] = 1.5 }),
		"zero queries":      mutate(func(m map[string]any) { m["queries"] = 0 }),
		"worlds not array":  mutate(func(m map[string]any) { m["worlds"] = "x" }),
		"world sans name":   mutate(func(m map[string]any) { delete(world(m), "name") }),
		"world extra field": mutate(func(m map[string]any) { world(m)["note"] = "hi" }),
		"negative shards":   mutate(func(m map[string]any) { m["shards"] = -1 }),
		"sharded not metrics": mutate(func(m map[string]any) {
			world(m)["sharded"] = "fast"
		}),
		"negative qps": mutate(func(m map[string]any) {
			world(m)["slab"].(map[string]any)["qps"] = -1.0
		}),
		"metrics extra field": mutate(func(m map[string]any) {
			world(m)["map"].(map[string]any)["p99"] = 1.0
		}),
		"remote not metrics": mutate(func(m map[string]any) {
			world(m)["remote"] = 3.0
		}),
		"remote_net sans calls": mutate(func(m map[string]any) {
			world(m)["remote_net"] = map[string]any{
				"attempts": 1.0, "retries": 0.0, "hedges_started": 0.0,
				"breaker_opens": 0.0, "errors": 0.0, "degraded": 0.0,
			}
		}),
		"remote_net extra field": mutate(func(m map[string]any) {
			world(m)["remote_net"] = map[string]any{
				"calls": 1.0, "attempts": 1.0, "retries": 0.0, "hedges_started": 0.0,
				"breaker_opens": 0.0, "errors": 0.0, "degraded": 0.0, "p99": 1.0,
			}
		}),
	}
	for name, data := range cases {
		if err := Validate(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestCommittedArtifactsConform validates every BENCH_*.json checked in
// at the repository root against the embedded schema, so a hand edit or
// a writer change that breaks the contract fails the build.
func TestCommittedArtifactsConform(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed BENCH_*.json artifacts found at the repository root")
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Decode(data)
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(p), err)
			continue
		}
		// Older artifacts keep the schema_version they were written
		// with; the schema is evolved backward-compatibly.
		if r.SchemaVersion < 1 || r.SchemaVersion > SchemaVersion {
			t.Errorf("%s: schema_version %d outside [1, %d]", filepath.Base(p), r.SchemaVersion, SchemaVersion)
		}
		switch r.Bench {
		case "slab-vs-map", "sharded-scatter-gather", "remote-scatter-gather", "routes", "traj":
		default:
			t.Errorf("%s: unknown bench %q", filepath.Base(p), r.Bench)
		}
		if !strings.HasPrefix(r.GoVersion, "go") {
			t.Errorf("%s: go_version %q", filepath.Base(p), r.GoVersion)
		}
		if len(r.Worlds) == 0 {
			t.Errorf("%s: no worlds", filepath.Base(p))
		}
	}
}
