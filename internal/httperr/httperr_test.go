package httperr

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/engine"
)

// statusErr is a minimal Statuser carrier, standing in for error types
// like the remote coordinator's shards-unavailable error.
type statusErr struct{ code int }

func (e *statusErr) Error() string   { return fmt.Sprintf("status %d", e.code) }
func (e *statusErr) HTTPStatus() int { return e.code }

// TestStatusMapping pins the full error→status table. Every serving
// surface routes through this mapper, so a change here is a change to
// the public API of every endpoint at once — the table below is the
// contract.
func TestStatusMapping(t *testing.T) {
	cases := []struct {
		name       string
		err        error
		clientGone bool
		status     int
		retryAfter bool
	}{
		{"overload", engine.ErrOverloaded, false, http.StatusServiceUnavailable, true},
		{"wrapped overload", fmt.Errorf("queue: %w", engine.ErrOverloaded), false, http.StatusServiceUnavailable, true},
		{"client gone", context.Canceled, true, StatusClientClosedRequest, false},
		{"internal cancel", context.Canceled, false, http.StatusInternalServerError, false},
		{"deadline", context.DeadlineExceeded, false, http.StatusGatewayTimeout, false},
		{"deadline with client gone", context.DeadlineExceeded, true, http.StatusGatewayTimeout, false},
		{"panic", &engine.PanicError{Value: "boom"}, false, http.StatusInternalServerError, false},
		{"wrapped panic", fmt.Errorf("worker: %w", &engine.PanicError{Value: "boom"}), false, http.StatusInternalServerError, false},
		{"bad query", errors.New("k must be positive"), false, http.StatusBadRequest, false},
		{"statuser 503 retries", &statusErr{http.StatusServiceUnavailable}, false, http.StatusServiceUnavailable, true},
		{"statuser 400 no retry", &statusErr{http.StatusBadRequest}, false, http.StatusBadRequest, false},
		{"statuser 504 no retry", &statusErr{http.StatusGatewayTimeout}, false, http.StatusGatewayTimeout, false},
		{"wrapped statuser", fmt.Errorf("gather: %w", &statusErr{http.StatusServiceUnavailable}), false, http.StatusServiceUnavailable, true},
	}
	for _, tc := range cases {
		status, retry := Status(tc.err, tc.clientGone)
		if status != tc.status || retry != tc.retryAfter {
			t.Errorf("%s: Status(%v, clientGone=%v) = (%d, %v), want (%d, %v)",
				tc.name, tc.err, tc.clientGone, status, retry, tc.status, tc.retryAfter)
		}
	}
}

// TestStatuserPrecedence: a carried status wins over the generic rules —
// an error that both wraps context.Canceled and carries a status must
// answer with the carried status, because the carrier knows better.
func TestStatuserPrecedence(t *testing.T) {
	err := &cancelStatuser{}
	if status, _ := Status(err, false); status != http.StatusServiceUnavailable {
		t.Errorf("Statuser carrying 503 over Canceled mapped to %d, want 503", status)
	}
}

type cancelStatuser struct{}

func (e *cancelStatuser) Error() string   { return "unavailable: " + context.Canceled.Error() }
func (e *cancelStatuser) Unwrap() error   { return context.Canceled }
func (e *cancelStatuser) HTTPStatus() int { return http.StatusServiceUnavailable }
