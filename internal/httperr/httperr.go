// Package httperr is the single source of truth for mapping query-path
// errors to HTTP statuses. Every serving surface — /api/streets, the
// batch endpoint, the multi-tenant router (which forwards into the same
// handlers), the per-shard soishard endpoint and the remote
// scatter-gather path — routes its errors through Status, so the same
// failure always wears the same status code:
//
//	overload / shed / shards exhausted  → 503 (+ Retry-After)
//	client went away                    → 499 (accounting only)
//	deadline expired                    → 504
//	recovered panic, internal cancel    → 500
//	bad query                           → 400
//
// The distinction between 499 and 500 for context.Canceled is the
// subtle one this mapper exists to pin down: cancellation is only the
// client's fault when the *request's* context is the one that died.
// An evaluation cancelled for any other reason (an internal component
// gave up, a coordinator pruned a speculative call it then needed
// after all) is a server fault and must read as one in the access
// logs, not as a 400 "bad request".
package httperr

import (
	"context"
	"errors"
	"net/http"

	"repro/internal/engine"
)

// StatusClientClosedRequest is the nginx-convention 499 status recorded
// when the client cancelled the request before the answer was ready. No
// client sees it (the connection is gone); it keeps access accounting
// honest.
const StatusClientClosedRequest = 499

// Statuser lets error types outside this package's import reach carry
// their own status (e.g. the remote coordinator's shards-unavailable
// error maps itself to 503). It is consulted before the generic rules.
type Statuser interface {
	HTTPStatus() int
}

// Status maps a query-path error to its HTTP status. clientGone reports
// whether the *request's* context was cancelled (r.Context().Err() !=
// nil), which decides between 499 (client went away) and 500 (internal
// cancellation). The second return value reports whether the response
// should carry a Retry-After hint (overload-class statuses).
func Status(err error, clientGone bool) (status int, retryAfter bool) {
	var st Statuser
	var pe *engine.PanicError
	switch {
	case errors.As(err, &st):
		s := st.HTTPStatus()
		return s, s == http.StatusServiceUnavailable
	case errors.Is(err, engine.ErrOverloaded):
		return http.StatusServiceUnavailable, true
	case errors.Is(err, context.Canceled):
		if clientGone {
			return StatusClientClosedRequest, false
		}
		// Cancelled but not by the client: an internal component gave
		// up. That is a server fault, not a malformed query.
		return http.StatusInternalServerError, false
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, false
	case errors.As(err, &pe):
		return http.StatusInternalServerError, false
	default:
		return http.StatusBadRequest, false
	}
}
