// Slab is the compact, struct-of-arrays form of a built Grid plus the
// weighted global inverted index of Section 3.2.1, flattened into a
// handful of contiguous arrays: per-cell member and postings lists become
// offset ranges into shared uint32 segments, and the keyword → cells map
// becomes a vocab-major CSR (one offset range of (cell, weight) entries
// per keyword id, sorted decreasingly by weight). The layout removes every
// per-cell map and pointer, so query hot loops walk dense arrays only, and
// it admits a trivially mmap-able binary encoding (slabio.go).
//
// A Slab is immutable after construction; every slice field is shared,
// read-only data. Callers (including internal/core's SL1/SL2/SL3 loops)
// must not modify any field.

package grid

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
	"repro/internal/vocab"
)

// Slab is the flattened grid index. Cells appear in ascending CellID
// order; the index of a cell in CellIDs is its ordinal, and every other
// per-cell array is indexed by ordinal.
type Slab struct {
	// Bounds, CellSize, NX and NY mirror the source grid geometry.
	Bounds   geo.Rect
	CellSize float64
	NX, NY   int
	// NumObjects is the number of indexed objects; object ids are dense
	// in [0, NumObjects).
	NumObjects int
	// VocabN is the keyword id space size covered by the inverted index
	// (max posting keyword id + 1); keywords ≥ VocabN have no postings.
	VocabN int

	// CellIDs lists the non-empty cells, sorted ascending.
	CellIDs []int32
	// PsiMin and PsiMax carry the per-cell keyword-set cardinality bounds
	// (c.ψmin, c.ψmax).
	PsiMin, PsiMax []int32
	// CellWeight is the total object weight per cell (|Pc| generalized to
	// weights).
	CellWeight []float64

	// MemberOff[i] .. MemberOff[i+1] delimits cell i's members (object
	// ids, sorted ascending) in Members. len(MemberOff) == NumCells()+1.
	MemberOff []uint32
	Members   []uint32

	// KwOff[i] .. KwOff[i+1] delimits cell i's keyword entries in CellKw
	// (keyword ids, sorted ascending). For entry j, PostOff[j] ..
	// PostOff[j+1] delimits the keyword's postings (object ids, sorted
	// ascending) in Postings. len(PostOff) == len(CellKw)+1.
	KwOff    []uint32
	CellKw   []uint32
	PostOff  []uint32
	Postings []uint32

	// InvOff[kw] .. InvOff[kw+1] delimits keyword kw's entries in InvCell
	// and InvWeight: the cells (as ordinals) containing the keyword with
	// their relevant weights, sorted decreasingly by weight, ties broken
	// by ascending cell. len(InvOff) == VocabN+1.
	InvOff    []uint32
	InvCell   []int32
	InvWeight []float64

	// ObjX, ObjY and ObjW are the object coordinates and weights, indexed
	// by object id (struct-of-arrays so distance kernels stream them).
	ObjX, ObjY, ObjW []float64
}

// NewSlab flattens a built grid into slab form. locs must be the object
// locations the grid was built over (indexed by object id); weights
// optionally carries per-object weights (nil means weight 1 everywhere).
// The construction is deterministic: it depends only on the grid contents,
// never on map iteration order, so slabs built from grids ingested with
// different worker counts are byte-identical.
func NewSlab(g *Grid, locs []geo.Point, weights []float64) (*Slab, error) {
	if g.Len() != len(locs) {
		return nil, fmt.Errorf("grid: slab over %d locations but grid indexes %d objects", len(locs), g.Len())
	}
	if weights != nil && len(weights) != len(locs) {
		return nil, fmt.Errorf("grid: %d locations but %d weights", len(locs), len(weights))
	}
	w := func(id uint32) float64 {
		if weights == nil {
			return 1
		}
		return weights[id]
	}

	cells := g.NonEmptyCells()
	s := &Slab{
		Bounds:     g.Bounds(),
		CellSize:   g.CellSize(),
		NX:         g.nx,
		NY:         g.ny,
		NumObjects: g.Len(),
		CellIDs:    make([]int32, len(cells)),
		PsiMin:     make([]int32, len(cells)),
		PsiMax:     make([]int32, len(cells)),
		CellWeight: make([]float64, len(cells)),
		MemberOff:  make([]uint32, len(cells)+1),
		KwOff:      make([]uint32, len(cells)+1),
		ObjX:       make([]float64, len(locs)),
		ObjY:       make([]float64, len(locs)),
		ObjW:       make([]float64, len(locs)),
	}
	for i, p := range locs {
		s.ObjX[i] = p.X
		s.ObjY[i] = p.Y
		s.ObjW[i] = w(uint32(i))
	}

	// kwEntry accumulates the vocab-major inverted index; entries are
	// appended in ascending cell-ordinal order and later sorted by weight.
	type kwEntry struct {
		ord    int32
		weight float64
	}
	perKw := make(map[vocab.ID][]kwEntry)

	for ord, cid := range cells {
		c := g.CellAt(cid)
		s.CellIDs[ord] = int32(cid)
		s.PsiMin[ord] = int32(c.PsiMin)
		s.PsiMax[ord] = int32(c.PsiMax)
		var total float64
		for _, m := range c.Members {
			total += s.ObjW[m]
		}
		s.CellWeight[ord] = total
		s.Members = append(s.Members, c.Members...)
		s.MemberOff[ord+1] = uint32(len(s.Members))
		// Keywords are already sorted (vocab.Set invariant).
		for _, kw := range c.Keywords {
			postings := c.Inv[kw]
			s.CellKw = append(s.CellKw, uint32(kw))
			s.Postings = append(s.Postings, postings...)
			s.PostOff = append(s.PostOff, uint32(len(s.Postings)))
			var kwWeight float64
			for _, m := range postings {
				kwWeight += s.ObjW[m]
			}
			perKw[kw] = append(perKw[kw], kwEntry{ord: int32(ord), weight: kwWeight})
			if int(kw) >= s.VocabN {
				s.VocabN = int(kw) + 1
			}
		}
		s.KwOff[ord+1] = uint32(len(s.CellKw))
	}
	// PostOff needs the leading 0 that the append loop above skipped.
	s.PostOff = append([]uint32{0}, s.PostOff...)

	s.InvOff = make([]uint32, s.VocabN+1)
	for kw := 0; kw < s.VocabN; kw++ {
		es := perKw[vocab.ID(kw)]
		sort.Slice(es, func(i, j int) bool {
			if es[i].weight != es[j].weight {
				return es[i].weight > es[j].weight
			}
			return es[i].ord < es[j].ord
		})
		for _, e := range es {
			s.InvCell = append(s.InvCell, e.ord)
			s.InvWeight = append(s.InvWeight, e.weight)
		}
		s.InvOff[kw+1] = uint32(len(s.InvCell))
	}
	return s, nil
}

// NumCells returns the number of non-empty cells.
func (s *Slab) NumCells() int { return len(s.CellIDs) }

// OrdinalOf returns the ordinal of cell id, or -1 when the cell is empty.
func (s *Slab) OrdinalOf(id CellID) int {
	lo, hi := 0, len(s.CellIDs)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.CellIDs[mid] < int32(id) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.CellIDs) && s.CellIDs[lo] == int32(id) {
		return lo
	}
	return -1
}

// CellRect returns the rectangle covered by cell id, with the same
// arithmetic as Grid.CellRect so geometric predicates agree bit-for-bit.
func (s *Slab) CellRect(id CellID) geo.Rect {
	ix, iy := int(id)%s.NX, int(id)/s.NX
	minX := s.Bounds.MinX + float64(ix)*s.CellSize
	minY := s.Bounds.MinY + float64(iy)*s.CellSize
	return geo.Rect{MinX: minX, MinY: minY, MaxX: minX + s.CellSize, MaxY: minY + s.CellSize}
}

// CellsNearSegmentInto appends the ordinals of all non-empty cells within
// distance eps of seg to buf (ascending), reusing its capacity. The
// predicate is identical to Grid.CellsNearSegment, so the resulting cell
// sets — and every mass computed from them — match the map layout exactly.
func (s *Slab) CellsNearSegmentInto(seg geo.Segment, eps float64, buf []int32) []int32 {
	b := seg.Bounds().Expand(eps)
	ix0 := clamp(int((b.MinX-s.Bounds.MinX)/s.CellSize), 0, s.NX-1)
	ix1 := clamp(int((b.MaxX-s.Bounds.MinX)/s.CellSize), 0, s.NX-1)
	iy0 := clamp(int((b.MinY-s.Bounds.MinY)/s.CellSize), 0, s.NY-1)
	iy1 := clamp(int((b.MaxY-s.Bounds.MinY)/s.CellSize), 0, s.NY-1)
	for iy := iy0; iy <= iy1; iy++ {
		// One binary search locates the row's first candidate ordinal;
		// the sorted CellIDs array is then scanned forward.
		rowLo := int32(iy*s.NX + ix0)
		rowHi := int32(iy*s.NX + ix1)
		ord := sort.Search(len(s.CellIDs), func(i int) bool { return s.CellIDs[i] >= rowLo })
		for ; ord < len(s.CellIDs) && s.CellIDs[ord] <= rowHi; ord++ {
			id := CellID(s.CellIDs[ord])
			if s.CellRect(id).DistToSegment(seg) <= eps {
				buf = append(buf, int32(ord))
			}
		}
	}
	return buf
}

// FromSlab reconstructs the map-layout grid from a slab. The returned
// grid aliases the slab's arrays (members, postings and keyword sets are
// subslices), so it inherits the slab's read-only contract; use it to
// serve the map-based query paths from a loaded snapshot without
// re-ingesting objects.
func FromSlab(s *Slab) *Grid {
	g := &Grid{
		bounds:   s.Bounds,
		cellSize: s.CellSize,
		nx:       s.NX,
		ny:       s.NY,
		n:        s.NumObjects,
		cells:    make(map[CellID]*Cell, s.NumCells()),
	}
	for ord := range s.CellIDs {
		kwLo, kwHi := s.KwOff[ord], s.KwOff[ord+1]
		// Three-index subslices cap every aliased list at its own length,
		// so an append (dynamic insertion) reallocates instead of writing
		// into the next cell's range.
		c := &Cell{
			Members:  s.Members[s.MemberOff[ord]:s.MemberOff[ord+1]:s.MemberOff[ord+1]],
			Inv:      make(map[vocab.ID][]uint32, kwHi-kwLo),
			Keywords: vocab.Set(s.CellKw[kwLo:kwHi:kwHi]),
			PsiMin:   int(s.PsiMin[ord]),
			PsiMax:   int(s.PsiMax[ord]),
		}
		for j := kwLo; j < kwHi; j++ {
			c.Inv[vocab.ID(s.CellKw[j])] = s.Postings[s.PostOff[j]:s.PostOff[j+1]:s.PostOff[j+1]]
		}
		g.cells[CellID(s.CellIDs[ord])] = c
	}
	return g
}

// Validate checks the slab's structural invariants: monotone offset
// arrays that end at their target array's length, sorted cell ids within
// the grid dimensions, in-range ordinals, object ids and keyword ids, and
// finite geometry. Decoded slabs are validated before use so a corrupt
// snapshot surfaces as an error instead of an out-of-range panic.
func (s *Slab) Validate() error {
	if s.NX <= 0 || s.NY <= 0 {
		return fmt.Errorf("grid: slab dims %dx%d", s.NX, s.NY)
	}
	if !(s.CellSize > 0) || math.IsInf(s.CellSize, 0) {
		return fmt.Errorf("grid: slab cell size %v", s.CellSize)
	}
	if !s.Bounds.IsValid() {
		return fmt.Errorf("grid: slab bounds %v invalid", s.Bounds)
	}
	if s.NumObjects < 0 || s.VocabN < 0 {
		return fmt.Errorf("grid: slab negative counts (%d objects, %d keywords)", s.NumObjects, s.VocabN)
	}
	c := len(s.CellIDs)
	if len(s.PsiMin) != c || len(s.PsiMax) != c || len(s.CellWeight) != c {
		return fmt.Errorf("grid: slab per-cell array lengths disagree with %d cells", c)
	}
	if len(s.ObjX) != s.NumObjects || len(s.ObjY) != s.NumObjects || len(s.ObjW) != s.NumObjects {
		return fmt.Errorf("grid: slab object arrays disagree with %d objects", s.NumObjects)
	}
	limit := int64(s.NX) * int64(s.NY)
	for i, id := range s.CellIDs {
		if int64(id) < 0 || int64(id) >= limit {
			return fmt.Errorf("grid: slab cell id %d outside %dx%d grid", id, s.NX, s.NY)
		}
		if i > 0 && s.CellIDs[i-1] >= id {
			return fmt.Errorf("grid: slab cell ids not strictly increasing at %d", i)
		}
	}
	if err := checkCSR("members", s.MemberOff, c, len(s.Members)); err != nil {
		return err
	}
	if err := checkCSR("cell keywords", s.KwOff, c, len(s.CellKw)); err != nil {
		return err
	}
	if err := checkCSR("postings", s.PostOff, len(s.CellKw), len(s.Postings)); err != nil {
		return err
	}
	if err := checkCSR("inverted", s.InvOff, s.VocabN, len(s.InvCell)); err != nil {
		return err
	}
	if len(s.InvWeight) != len(s.InvCell) {
		return fmt.Errorf("grid: slab inverted weights (%d) disagree with cells (%d)", len(s.InvWeight), len(s.InvCell))
	}
	for _, m := range s.Members {
		if int(m) >= s.NumObjects {
			return fmt.Errorf("grid: slab member id %d outside %d objects", m, s.NumObjects)
		}
	}
	for _, m := range s.Postings {
		if int(m) >= s.NumObjects {
			return fmt.Errorf("grid: slab posting id %d outside %d objects", m, s.NumObjects)
		}
	}
	for _, kw := range s.CellKw {
		if int(kw) >= s.VocabN {
			return fmt.Errorf("grid: slab keyword id %d outside vocab %d", kw, s.VocabN)
		}
	}
	for _, ord := range s.InvCell {
		if ord < 0 || int(ord) >= c {
			return fmt.Errorf("grid: slab inverted ordinal %d outside %d cells", ord, c)
		}
	}
	return nil
}

// checkCSR validates one offset array: len n+1, starting at zero,
// non-decreasing, ending at the target length.
func checkCSR(name string, off []uint32, n, target int) error {
	if len(off) != n+1 {
		return fmt.Errorf("grid: slab %s offsets len %d, want %d", name, len(off), n+1)
	}
	if off[0] != 0 {
		return fmt.Errorf("grid: slab %s offsets start at %d", name, off[0])
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("grid: slab %s offsets decrease at %d", name, i)
		}
	}
	if int(off[n]) != target {
		return fmt.Errorf("grid: slab %s offsets end at %d, want %d", name, off[n], target)
	}
	return nil
}
