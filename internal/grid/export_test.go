package grid

import (
	"repro/internal/geo"
	"repro/internal/vocab"
)

// BuildWithWorkers exposes the internal worker-count knob so tests can
// force the sharded parallel ingestion path (workers ≥ 2 shards even
// below the size threshold is still gated by parallelBuildThreshold, so
// tests use inputs above it) and verify worker-count independence.
func BuildWithWorkers(cfg Config, locs []geo.Point, keys []vocab.Set, workers int) (*Grid, error) {
	return build(cfg, locs, keys, workers)
}

// ParallelBuildThreshold re-exports the sharding cutoff for tests.
const ParallelBuildThreshold = parallelBuildThreshold
