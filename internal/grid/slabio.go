package grid

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"unsafe"

	"repro/internal/geo"
)

// Binary slab encoding (little-endian throughout):
//
//	offset  size  field
//	     0     8  magic "SOISLAB1"
//	     8     8  nx
//	    16     8  ny
//	    24     8  numObjects
//	    32     8  vocabN
//	    40     8  numCells C
//	    48     8  len(Members)
//	    56     8  len(CellKw) K
//	    64     8  len(Postings)
//	    72     8  len(InvCell)
//	    80     8  cellSize (float64 bits)
//	    88    32  bounds MinX, MinY, MaxX, MaxY (float64 bits)
//	   120     —  arrays, each padded to the next 8-byte boundary:
//	              CellIDs   int32 ×C        PsiMin  int32 ×C
//	              PsiMax    int32 ×C        MemberOff uint32 ×(C+1)
//	              Members   uint32          KwOff   uint32 ×(C+1)
//	              CellKw    uint32 ×K       PostOff uint32 ×(K+1)
//	              Postings  uint32          InvOff  uint32 ×(vocabN+1)
//	              InvCell   int32           CellWeight float64 ×C
//	              InvWeight float64         ObjX/ObjY/ObjW float64 ×numObjects
//
// The 8-byte padding keeps every array aligned for direct aliasing, so a
// slab mapped from disk is served without copying its arrays.

// slabMagic identifies a serialized slab; the trailing digit is the
// layout generation and changes whenever the array order or header moves.
const slabMagic = "SOISLAB1"

// slabHeaderSize is the fixed prefix before the first array.
const slabHeaderSize = 120

// ErrSlabMalformed is wrapped by every slab decoding error.
var ErrSlabMalformed = errors.New("grid: malformed slab")

// AppendBinary appends the slab's binary encoding to buf and returns the
// extended slice. The encoding is deterministic: equal slabs encode to
// equal bytes.
func (s *Slab) AppendBinary(buf []byte) []byte {
	var h [slabHeaderSize]byte
	copy(h[:8], slabMagic)
	le := binary.LittleEndian
	le.PutUint64(h[8:], uint64(s.NX))
	le.PutUint64(h[16:], uint64(s.NY))
	le.PutUint64(h[24:], uint64(s.NumObjects))
	le.PutUint64(h[32:], uint64(s.VocabN))
	le.PutUint64(h[40:], uint64(len(s.CellIDs)))
	le.PutUint64(h[48:], uint64(len(s.Members)))
	le.PutUint64(h[56:], uint64(len(s.CellKw)))
	le.PutUint64(h[64:], uint64(len(s.Postings)))
	le.PutUint64(h[72:], uint64(len(s.InvCell)))
	le.PutUint64(h[80:], math.Float64bits(s.CellSize))
	le.PutUint64(h[88:], math.Float64bits(s.Bounds.MinX))
	le.PutUint64(h[96:], math.Float64bits(s.Bounds.MinY))
	le.PutUint64(h[104:], math.Float64bits(s.Bounds.MaxX))
	le.PutUint64(h[112:], math.Float64bits(s.Bounds.MaxY))
	buf = append(buf, h[:]...)

	buf = appendI32s(buf, s.CellIDs)
	buf = appendI32s(buf, s.PsiMin)
	buf = appendI32s(buf, s.PsiMax)
	buf = appendU32s(buf, s.MemberOff)
	buf = appendU32s(buf, s.Members)
	buf = appendU32s(buf, s.KwOff)
	buf = appendU32s(buf, s.CellKw)
	buf = appendU32s(buf, s.PostOff)
	buf = appendU32s(buf, s.Postings)
	buf = appendU32s(buf, s.InvOff)
	buf = appendI32s(buf, s.InvCell)
	buf = appendF64s(buf, s.CellWeight)
	buf = appendF64s(buf, s.InvWeight)
	buf = appendF64s(buf, s.ObjX)
	buf = appendF64s(buf, s.ObjY)
	buf = appendF64s(buf, s.ObjW)
	return buf
}

// EncodedSize returns the exact byte length AppendBinary will produce.
func (s *Slab) EncodedSize() int {
	n := slabHeaderSize
	for _, l := range []int{len(s.CellIDs), len(s.PsiMin), len(s.PsiMax), len(s.InvCell)} {
		n += pad8(4 * l)
	}
	for _, l := range []int{len(s.MemberOff), len(s.Members), len(s.KwOff), len(s.CellKw), len(s.PostOff), len(s.Postings), len(s.InvOff)} {
		n += pad8(4 * l)
	}
	n += 8 * (len(s.CellWeight) + len(s.InvWeight) + 3*s.NumObjects)
	return n
}

// DecodeSlab parses a binary slab. The returned slab aliases data's
// arrays whenever the backing memory is suitably aligned (always the case
// for mmap-ed files and fresh allocations) and copies them otherwise, so
// callers keeping data alive may treat the result as zero-copy. The slab
// is fully validated; any structural defect returns an error wrapping
// ErrSlabMalformed, never a panic.
func DecodeSlab(data []byte) (*Slab, error) {
	if len(data) < slabHeaderSize {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrSlabMalformed, len(data), slabHeaderSize)
	}
	if string(data[:8]) != slabMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrSlabMalformed, data[:8])
	}
	le := binary.LittleEndian
	counts := make([]uint64, 9)
	for i := range counts {
		counts[i] = le.Uint64(data[8+8*i:])
	}
	// Every count is bounded by what could possibly fit in the payload;
	// this guards the int conversions and size arithmetic below against
	// overflow on hostile input.
	limit := uint64(len(data))
	for i, c := range counts {
		if c > limit {
			return nil, fmt.Errorf("%w: count %d = %d exceeds input size", ErrSlabMalformed, i, c)
		}
	}
	nx, ny := int(counts[0]), int(counts[1])
	numObjects, vocabN := int(counts[2]), int(counts[3])
	numCells := int(counts[4])
	lenMembers, lenCellKw := int(counts[5]), int(counts[6])
	lenPostings, lenInvCell := int(counts[7]), int(counts[8])

	s := &Slab{
		NX:         nx,
		NY:         ny,
		NumObjects: numObjects,
		VocabN:     vocabN,
		CellSize:   math.Float64frombits(le.Uint64(data[80:])),
		Bounds: geo.Rect{
			MinX: math.Float64frombits(le.Uint64(data[88:])),
			MinY: math.Float64frombits(le.Uint64(data[96:])),
			MaxX: math.Float64frombits(le.Uint64(data[104:])),
			MaxY: math.Float64frombits(le.Uint64(data[112:])),
		},
	}

	d := slabDecoder{data: data, off: slabHeaderSize}
	s.CellIDs = d.i32s(numCells)
	s.PsiMin = d.i32s(numCells)
	s.PsiMax = d.i32s(numCells)
	s.MemberOff = d.u32s(numCells + 1)
	s.Members = d.u32s(lenMembers)
	s.KwOff = d.u32s(numCells + 1)
	s.CellKw = d.u32s(lenCellKw)
	s.PostOff = d.u32s(lenCellKw + 1)
	s.Postings = d.u32s(lenPostings)
	s.InvOff = d.u32s(vocabN + 1)
	s.InvCell = d.i32s(lenInvCell)
	s.CellWeight = d.f64s(numCells)
	s.InvWeight = d.f64s(lenInvCell)
	s.ObjX = d.f64s(numObjects)
	s.ObjY = d.f64s(numObjects)
	s.ObjW = d.f64s(numObjects)
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSlabMalformed, len(data)-d.off)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSlabMalformed, err)
	}
	return s, nil
}

// slabDecoder slices consecutive padded arrays out of the input, carrying
// the first error.
type slabDecoder struct {
	data []byte
	off  int
	err  error
}

// take returns the next n bytes (with the array padded to 8) or nil after
// recording a truncation error.
func (d *slabDecoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	padded := pad8(n)
	if padded < n || d.off+padded < d.off || d.off+padded > len(d.data) {
		d.err = fmt.Errorf("%w: truncated at offset %d (need %d bytes)", ErrSlabMalformed, d.off, padded)
		return nil
	}
	b := d.data[d.off : d.off+n]
	for _, p := range d.data[d.off+n : d.off+padded] {
		if p != 0 {
			d.err = fmt.Errorf("%w: nonzero padding at offset %d", ErrSlabMalformed, d.off+n)
			return nil
		}
	}
	d.off += padded
	return b
}

func (d *slabDecoder) u32s(n int) []uint32 {
	if n < 0 {
		d.err = fmt.Errorf("%w: negative array length", ErrSlabMalformed)
		return nil
	}
	b := d.take(4 * n)
	if b == nil || n == 0 {
		return nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

func (d *slabDecoder) i32s(n int) []int32 {
	u := d.u32s(n)
	if u == nil {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&u[0])), n)
}

func (d *slabDecoder) f64s(n int) []float64 {
	if n < 0 {
		d.err = fmt.Errorf("%w: negative array length", ErrSlabMalformed)
		return nil
	}
	b := d.take(8 * n)
	if b == nil || n == 0 {
		return nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func pad8(n int) int { return (n + 7) &^ 7 }

func appendU32s(buf []byte, vs []uint32) []byte {
	for _, v := range vs {
		buf = binary.LittleEndian.AppendUint32(buf, v)
	}
	return appendPad8(buf, 4*len(vs))
}

func appendI32s(buf []byte, vs []int32) []byte {
	for _, v := range vs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	return appendPad8(buf, 4*len(vs))
}

func appendF64s(buf []byte, vs []float64) []byte {
	for _, v := range vs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

func appendPad8(buf []byte, written int) []byte {
	for i := written; i%8 != 0; i++ {
		buf = append(buf, 0)
	}
	return buf
}
