package grid_test

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/vocab"
)

// slabWorld generates a reproducible random object set.
func slabWorld(seed int64, n, vocabN int) ([]geo.Point, []vocab.Set, []float64) {
	rng := rand.New(rand.NewSource(seed))
	locs := make([]geo.Point, n)
	keys := make([]vocab.Set, n)
	weights := make([]float64, n)
	for i := range locs {
		locs[i] = geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 80}
		ids := make([]vocab.ID, rng.Intn(4))
		for j := range ids {
			ids[j] = vocab.ID(rng.Intn(vocabN))
		}
		keys[i] = vocab.NewSet(ids)
		weights[i] = 0.5 + rng.Float64()
	}
	return locs, keys, weights
}

func buildSlab(t *testing.T, seed int64, n, vocabN int, weighted bool) (*grid.Grid, *grid.Slab, []geo.Point, []float64) {
	t.Helper()
	locs, keys, weights := slabWorld(seed, n, vocabN)
	if !weighted {
		weights = nil
	}
	g, err := grid.Build(grid.Config{CellSize: 5}, locs, keys)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s, err := grid.NewSlab(g, locs, weights)
	if err != nil {
		t.Fatalf("NewSlab: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate on fresh slab: %v", err)
	}
	return g, s, locs, weights
}

// TestSlabMatchesGrid verifies every flattened structure against the map
// layout cell by cell.
func TestSlabMatchesGrid(t *testing.T) {
	g, s, _, weights := buildSlab(t, 1, 500, 12, true)

	cells := g.NonEmptyCells()
	if s.NumCells() != len(cells) {
		t.Fatalf("slab has %d cells, grid %d", s.NumCells(), len(cells))
	}
	for ord, cid := range cells {
		if got := s.OrdinalOf(cid); got != ord {
			t.Fatalf("OrdinalOf(%d) = %d, want %d", cid, got, ord)
		}
		if s.CellRect(cid) != g.CellRect(cid) {
			t.Fatalf("cell %d rect mismatch", cid)
		}
		c := g.CellAt(cid)
		members := s.Members[s.MemberOff[ord]:s.MemberOff[ord+1]]
		if !equalU32(members, c.Members) {
			t.Fatalf("cell %d members = %v, want %v", cid, members, c.Members)
		}
		if int(s.PsiMin[ord]) != c.PsiMin || int(s.PsiMax[ord]) != c.PsiMax {
			t.Fatalf("cell %d psi bounds (%d,%d), want (%d,%d)",
				cid, s.PsiMin[ord], s.PsiMax[ord], c.PsiMin, c.PsiMax)
		}
		var wantW float64
		for _, m := range c.Members {
			wantW += weights[m]
		}
		if s.CellWeight[ord] != wantW {
			t.Fatalf("cell %d weight %v, want %v", cid, s.CellWeight[ord], wantW)
		}
		kws := vocab.Set(s.CellKw[s.KwOff[ord]:s.KwOff[ord+1]])
		if !kws.Equal(c.Keywords) {
			t.Fatalf("cell %d keywords %v, want %v", cid, kws, c.Keywords)
		}
		for j := s.KwOff[ord]; j < s.KwOff[ord+1]; j++ {
			kw := vocab.ID(s.CellKw[j])
			postings := s.Postings[s.PostOff[j]:s.PostOff[j+1]]
			if !equalU32(postings, c.Inv[kw]) {
				t.Fatalf("cell %d kw %d postings %v, want %v", cid, kw, postings, c.Inv[kw])
			}
		}
	}

	// The vocab-major inverted index must cover exactly the (kw, cell)
	// pairs of the grid, sorted decreasingly by weight, ties by ordinal.
	for kw := 0; kw < s.VocabN; kw++ {
		lo, hi := s.InvOff[kw], s.InvOff[kw+1]
		seen := map[int32]bool{}
		for i := lo; i < hi; i++ {
			ord := s.InvCell[i]
			seen[ord] = true
			if i > lo {
				prev, cur := s.InvWeight[i-1], s.InvWeight[i]
				if cur > prev || (cur == prev && s.InvCell[i-1] >= ord) {
					t.Fatalf("kw %d entries out of order at %d", kw, i)
				}
			}
			cid := grid.CellID(s.CellIDs[ord])
			postings := g.CellAt(cid).Inv[vocab.ID(kw)]
			var want float64
			for _, m := range postings {
				want += weights[m]
			}
			if s.InvWeight[i] != want {
				t.Fatalf("kw %d cell %d weight %v, want %v", kw, cid, s.InvWeight[i], want)
			}
		}
		for ord, cid := range cells {
			if _, ok := g.CellAt(cid).Inv[vocab.ID(kw)]; ok != seen[int32(ord)] {
				t.Fatalf("kw %d cell %d presence mismatch", kw, cid)
			}
		}
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSlabCellsNearSegment cross-checks the slab's geometric predicate
// against the map grid's on random segments.
func TestSlabCellsNearSegment(t *testing.T) {
	g, s, _, _ := buildSlab(t, 2, 400, 8, false)
	rng := rand.New(rand.NewSource(7))
	var buf []int32
	for trial := 0; trial < 200; trial++ {
		seg := geo.Segment{
			A: geo.Point{X: rng.Float64() * 110, Y: rng.Float64() * 90},
			B: geo.Point{X: rng.Float64() * 110, Y: rng.Float64() * 90},
		}
		eps := rng.Float64() * 10
		want := g.CellsNearSegment(seg, eps)
		buf = s.CellsNearSegmentInto(seg, eps, buf[:0])
		if len(buf) != len(want) {
			t.Fatalf("trial %d: %d cells, want %d", trial, len(buf), len(want))
		}
		for i, ord := range buf {
			if grid.CellID(s.CellIDs[ord]) != want[i] {
				t.Fatalf("trial %d: cell %d = %d, want %d", trial, i, s.CellIDs[ord], want[i])
			}
		}
	}
}

// TestFromSlabRoundTrip rebuilds a map grid from the slab and compares it
// with the original.
func TestFromSlabRoundTrip(t *testing.T) {
	g, s, _, _ := buildSlab(t, 3, 300, 10, false)
	g2 := grid.FromSlab(s)
	if g2.Len() != g.Len() || g2.NumCells() != g.NumCells() {
		t.Fatalf("round-trip sizes (%d objects, %d cells), want (%d, %d)",
			g2.Len(), g2.NumCells(), g.Len(), g.NumCells())
	}
	if g2.Bounds() != g.Bounds() || g2.CellSize() != g.CellSize() {
		t.Fatalf("round-trip geometry mismatch")
	}
	for _, cid := range g.NonEmptyCells() {
		c, c2 := g.CellAt(cid), g2.CellAt(cid)
		if c2 == nil {
			t.Fatalf("cell %d missing after round trip", cid)
		}
		if !equalU32(c.Members, c2.Members) || !c.Keywords.Equal(c2.Keywords) ||
			c.PsiMin != c2.PsiMin || c.PsiMax != c2.PsiMax || len(c.Inv) != len(c2.Inv) {
			t.Fatalf("cell %d differs after round trip", cid)
		}
		for kw, postings := range c.Inv {
			if !equalU32(postings, c2.Inv[kw]) {
				t.Fatalf("cell %d kw %d postings differ", cid, kw)
			}
		}
	}
}

// TestSlabCodecRoundTrip encodes, decodes and re-encodes a slab; both
// encodings must be byte-identical and sized as promised.
func TestSlabCodecRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		_, s, _, _ := buildSlab(t, 4, 350, 9, weighted)
		enc := s.AppendBinary(nil)
		if len(enc) != s.EncodedSize() {
			t.Fatalf("encoded %d bytes, EncodedSize says %d", len(enc), s.EncodedSize())
		}
		s2, err := grid.DecodeSlab(enc)
		if err != nil {
			t.Fatalf("DecodeSlab: %v", err)
		}
		enc2 := s2.AppendBinary(nil)
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("re-encoding differs after decode")
		}
		if s2.NumObjects != s.NumObjects || s2.VocabN != s.VocabN || s2.Bounds != s.Bounds {
			t.Fatalf("decoded header differs")
		}
	}
}

// TestSlabCodecEmpty covers the degenerate zero-object slab.
func TestSlabCodecEmpty(t *testing.T) {
	g, err := grid.Build(grid.Config{CellSize: 1, Bounds: geo.Rect{MaxX: 1, MaxY: 1}}, nil, nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s, err := grid.NewSlab(g, nil, nil)
	if err != nil {
		t.Fatalf("NewSlab: %v", err)
	}
	enc := s.AppendBinary(nil)
	if _, err := grid.DecodeSlab(enc); err != nil {
		t.Fatalf("DecodeSlab(empty): %v", err)
	}
}

// TestSlabDecodeCorrupt flips, truncates and oversizes encodings; every
// mutation must yield ErrSlabMalformed, never a panic, and accepted
// decodes must re-encode to the mutated input (meaning the flip landed in
// a don't-care padding byte or produced an equally valid slab).
func TestSlabDecodeCorrupt(t *testing.T) {
	_, s, _, _ := buildSlab(t, 5, 250, 7, true)
	enc := s.AppendBinary(nil)

	for cut := 0; cut < len(enc); cut += 13 {
		if _, err := grid.DecodeSlab(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		} else if !errors.Is(err, grid.ErrSlabMalformed) {
			t.Fatalf("truncation to %d: error %v not ErrSlabMalformed", cut, err)
		}
	}
	if _, err := grid.DecodeSlab(append(append([]byte{}, enc...), 0)); err == nil {
		t.Fatalf("trailing garbage decoded successfully")
	}

	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		mut := append([]byte{}, enc...)
		i := rng.Intn(len(mut))
		mut[i] ^= 1 << rng.Intn(8)
		s2, err := grid.DecodeSlab(mut)
		if err != nil {
			if !errors.Is(err, grid.ErrSlabMalformed) {
				t.Fatalf("trial %d: error %v not ErrSlabMalformed", trial, err)
			}
			continue
		}
		if !bytes.Equal(s2.AppendBinary(nil), mut) {
			t.Fatalf("trial %d: accepted decode does not round-trip", trial)
		}
	}
}

// TestSlabBuildDeterministicAcrossWorkers is the golden-hash guard for the
// sharded parallel grid build: slabs built from grids ingested with any
// worker count must be byte-identical.
func TestSlabBuildDeterministicAcrossWorkers(t *testing.T) {
	n := grid.ParallelBuildThreshold + 1500
	for _, seed := range []int64{0, 1, 42} {
		locs, keys, weights := slabWorld(seed, n, 20)
		var golden [sha256.Size]byte
		for _, workers := range []int{1, 2, 3, 4, 7, 16} {
			g, err := grid.BuildWithWorkers(grid.Config{CellSize: 3}, locs, keys, workers)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			s, err := grid.NewSlab(g, locs, weights)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			h := sha256.Sum256(s.AppendBinary(nil))
			if workers == 1 {
				golden = h
			} else if h != golden {
				t.Fatalf("seed %d: slab built with %d workers differs from sequential build", seed, workers)
			}
		}
	}
}

// TestSlabValidateRejects exercises Validate's individual checks through
// hand-broken slabs.
func TestSlabValidateRejects(t *testing.T) {
	fresh := func() *grid.Slab {
		_, s, _, _ := buildSlab(t, 6, 200, 6, false)
		return s
	}
	breaks := []struct {
		name string
		mut  func(*grid.Slab)
	}{
		{"dims", func(s *grid.Slab) { s.NX = 0 }},
		{"cellsize", func(s *grid.Slab) { s.CellSize = math.Inf(1) }},
		{"cellid-range", func(s *grid.Slab) { s.CellIDs[0] = int32(s.NX*s.NY) + 5 }},
		{"cellid-order", func(s *grid.Slab) { s.CellIDs[1] = s.CellIDs[0] }},
		{"member-off", func(s *grid.Slab) { s.MemberOff[1] = s.MemberOff[0] + 1<<30 }},
		{"member-id", func(s *grid.Slab) { s.Members[0] = uint32(s.NumObjects) }},
		{"posting-id", func(s *grid.Slab) { s.Postings[0] = uint32(s.NumObjects) }},
		{"kw-range", func(s *grid.Slab) { s.CellKw[0] = uint32(s.VocabN) }},
		{"inv-ordinal", func(s *grid.Slab) { s.InvCell[0] = int32(s.NumCells()) }},
		{"inv-weight-len", func(s *grid.Slab) { s.InvWeight = s.InvWeight[:len(s.InvWeight)-1] }},
		{"obj-len", func(s *grid.Slab) { s.ObjX = s.ObjX[:len(s.ObjX)-1] }},
	}
	for _, b := range breaks {
		s := fresh()
		b.mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted broken slab", b.name)
		}
	}
}
