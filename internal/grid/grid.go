// Package grid implements the spatial index substrate of the paper
// (Sections 3.2.1 and 4.2.1): a uniform grid over a set of located,
// keyword-tagged objects (POIs or photos) where every non-empty cell
// carries a local inverted index from keywords to member postings, plus a
// global inverted index mapping each keyword to the cells that contain it,
// sorted decreasingly by count (the SOI algorithm's source list SL1).
//
// The grid also answers the geometric queries the algorithms need: which
// non-empty cells lie within distance ε of a segment (the ε-augmented
// cell↔segment maps), and which cells fall in a (2Δ+1)×(2Δ+1) neighborhood
// of a given cell (the diversification spatial-relevance bounds).
package grid

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/geo"
	"repro/internal/vocab"
)

// CellID is a linearized cell coordinate: id = ix + iy*nx.
type CellID int32

// Cell holds the members of one non-empty grid cell together with its
// local inverted index and tag-cardinality bounds.
type Cell struct {
	// Members lists object ids in the cell, sorted ascending.
	Members []uint32
	// Inv maps each keyword to the cell members carrying it, sorted
	// ascending by id (the paper's postings lists c.I[ψ]).
	Inv map[vocab.ID][]uint32
	// Keywords is the sorted set of keywords present in the cell (c.Ψ).
	Keywords vocab.Set
	// PsiMin and PsiMax bound the keyword-set cardinality of the cell's
	// members (c.ψmin, c.ψmax in Section 4.2.1).
	PsiMin, PsiMax int
}

// Grid is an immutable uniform grid over a set of objects.
type Grid struct {
	bounds   geo.Rect
	cellSize float64
	nx, ny   int
	cells    map[CellID]*Cell
	n        int
}

// Config controls grid construction.
type Config struct {
	// CellSize is the side length of each square cell; must be positive.
	CellSize float64
	// Bounds is the area to cover. When zero, the bounding rectangle of
	// the objects is used.
	Bounds geo.Rect
}

// Build constructs a grid over objects given by parallel slices of
// locations and keyword sets. Objects outside Bounds are clamped into the
// border cells so that no object is lost.
func Build(cfg Config, locs []geo.Point, keys []vocab.Set) (*Grid, error) {
	return build(cfg, locs, keys, runtime.GOMAXPROCS(0))
}

// build is Build with an explicit worker count, so tests can pin the
// sharded ingestion path to arbitrary parallelism and verify the result
// is independent of it.
func build(cfg Config, locs []geo.Point, keys []vocab.Set, workers int) (*Grid, error) {
	if cfg.CellSize <= 0 {
		return nil, fmt.Errorf("grid: non-positive cell size %v", cfg.CellSize)
	}
	if len(keys) != 0 && len(keys) != len(locs) {
		return nil, fmt.Errorf("grid: %d locations but %d keyword sets", len(locs), len(keys))
	}
	b := cfg.Bounds
	if b == (geo.Rect{}) {
		for i, p := range locs {
			r := geo.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
			if i == 0 {
				b = r
			} else {
				b = b.Union(r)
			}
		}
	}
	if !b.IsValid() {
		return nil, fmt.Errorf("grid: invalid bounds %v", b)
	}
	nx := int(math.Ceil(b.Width()/cfg.CellSize)) + 1
	ny := int(math.Ceil(b.Height()/cfg.CellSize)) + 1
	g := &Grid{
		bounds:   b,
		cellSize: cfg.CellSize,
		nx:       nx,
		ny:       ny,
		cells:    make(map[CellID]*Cell),
		n:        len(locs),
	}
	if len(locs) < parallelBuildThreshold || workers < 2 {
		g.buildCells(locs, keys, nil, 1, 0)
	} else {
		g.buildCellsParallel(locs, keys, workers)
	}
	return g, nil
}

// parallelBuildThreshold is the object count below which the sharded
// parallel ingestion is not worth the goroutine and re-scan overhead.
const parallelBuildThreshold = 4096

// buildCells ingests every object whose cell id is owned by this shard
// (cid ≡ shard mod shards; shards=1 ingests everything) into g.cells,
// then finalizes the per-cell invariants. Objects are scanned in index
// order, which preserves the sorted-members and sorted-postings
// invariants by appending. cids optionally carries precomputed cell ids.
func (g *Grid) buildCells(locs []geo.Point, keys []vocab.Set, cids []CellID, shards, shard int) {
	for i := range locs {
		var cid CellID
		if cids != nil {
			cid = cids[i]
		} else {
			cid = g.CellIndex(locs[i])
		}
		if shards > 1 && int(cid)%shards != shard {
			continue
		}
		c := g.cells[cid]
		if c == nil {
			c = &Cell{Inv: make(map[vocab.ID][]uint32), PsiMin: math.MaxInt}
			g.cells[cid] = c
		}
		id := uint32(i)
		c.Members = append(c.Members, id)
		var ks vocab.Set
		if len(keys) > 0 {
			ks = keys[i]
		}
		for _, kw := range ks {
			c.Inv[kw] = append(c.Inv[kw], id)
		}
		if n := ks.Len(); n < c.PsiMin {
			c.PsiMin = n
		}
		if n := ks.Len(); n > c.PsiMax {
			c.PsiMax = n
		}
	}
	for _, c := range g.cells {
		finalizeCell(c)
	}
}

// finalizeCell derives a cell's keyword set from its postings and fixes
// the cardinality lower bound of keyword-free cells.
func finalizeCell(c *Cell) {
	ids := make([]vocab.ID, 0, len(c.Inv))
	for kw := range c.Inv {
		ids = append(ids, kw)
	}
	c.Keywords = vocab.NewSet(ids)
	if c.PsiMin == math.MaxInt {
		c.PsiMin = 0
	}
}

// buildCellsParallel shards ingestion across workers. Cell ids are
// precomputed once by chunked parallel scans; then each worker owns the
// cells with id ≡ w (mod workers) and builds them into a private map,
// scanning the shared cid slice in index order. The per-worker maps are
// disjoint by construction, so the final merge is conflict-free, and the
// resulting grid is bit-identical to a sequential build.
func (g *Grid) buildCellsParallel(locs []geo.Point, keys []vocab.Set, workers int) {
	cids := make([]CellID, len(locs))
	var wg sync.WaitGroup
	chunk := (len(locs) + workers - 1) / workers
	for lo := 0; lo < len(locs); lo += chunk {
		hi := lo + chunk
		if hi > len(locs) {
			hi = len(locs)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				cids[i] = g.CellIndex(locs[i])
			}
		}(lo, hi)
	}
	wg.Wait()

	shards := make([]map[CellID]*Cell, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sg := &Grid{bounds: g.bounds, cellSize: g.cellSize, nx: g.nx, ny: g.ny,
				cells: make(map[CellID]*Cell)}
			sg.buildCells(locs, keys, cids, workers, w)
			shards[w] = sg.cells
		}(w)
	}
	wg.Wait()
	for _, shard := range shards {
		for cid, c := range shard {
			g.cells[cid] = c
		}
	}
}

// Len returns the number of indexed objects.
func (g *Grid) Len() int { return g.n }

// Insert adds an object to the grid after construction, maintaining the
// per-cell invariants (sorted members and postings, keyword set,
// cardinality bounds). Object ids must be inserted in increasing order so
// that the sorted-postings invariant holds by appending; out-of-order ids
// are rejected. Insert is not safe for concurrent use with readers.
func (g *Grid) Insert(id uint32, loc geo.Point, keys vocab.Set) error {
	cid := g.CellIndex(loc)
	c := g.cells[cid]
	if c == nil {
		c = &Cell{Inv: make(map[vocab.ID][]uint32)}
		g.cells[cid] = c
	}
	if n := len(c.Members); n > 0 && c.Members[n-1] >= id {
		return fmt.Errorf("grid: insert id %d out of order (cell tail %d)", id, c.Members[n-1])
	}
	first := len(c.Members) == 0
	c.Members = append(c.Members, id)
	for _, kw := range keys {
		c.Inv[kw] = append(c.Inv[kw], id)
	}
	c.Keywords = c.Keywords.Union(keys)
	if n := keys.Len(); first {
		c.PsiMin, c.PsiMax = n, n
	} else {
		if n < c.PsiMin {
			c.PsiMin = n
		}
		if n > c.PsiMax {
			c.PsiMax = n
		}
	}
	g.n++
	return nil
}

// NumCells returns the number of non-empty cells.
func (g *Grid) NumCells() int { return len(g.cells) }

// Dims returns the grid dimensions (nx, ny).
func (g *Grid) Dims() (int, int) { return g.nx, g.ny }

// CellSize returns the side length of each cell.
func (g *Grid) CellSize() float64 { return g.cellSize }

// Bounds returns the area the grid covers.
func (g *Grid) Bounds() geo.Rect { return g.bounds }

// CellIndex returns the cell id containing p, clamped into the grid.
func (g *Grid) CellIndex(p geo.Point) CellID {
	ix := int((p.X - g.bounds.MinX) / g.cellSize)
	iy := int((p.Y - g.bounds.MinY) / g.cellSize)
	ix = clamp(ix, 0, g.nx-1)
	iy = clamp(iy, 0, g.ny-1)
	return CellID(ix + iy*g.nx)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Coords returns the (ix, iy) coordinates of a cell id.
func (g *Grid) Coords(id CellID) (int, int) {
	return int(id) % g.nx, int(id) / g.nx
}

// CellAt returns the cell with the given id, or nil when empty.
func (g *Grid) CellAt(id CellID) *Cell { return g.cells[id] }

// CellRect returns the rectangle covered by the cell.
func (g *Grid) CellRect(id CellID) geo.Rect {
	ix, iy := g.Coords(id)
	minX := g.bounds.MinX + float64(ix)*g.cellSize
	minY := g.bounds.MinY + float64(iy)*g.cellSize
	return geo.Rect{MinX: minX, MinY: minY, MaxX: minX + g.cellSize, MaxY: minY + g.cellSize}
}

// ForEachCell invokes fn for every non-empty cell. Iteration order is
// unspecified.
func (g *Grid) ForEachCell(fn func(id CellID, c *Cell)) {
	for id, c := range g.cells {
		fn(id, c)
	}
}

// NonEmptyCells returns the ids of all non-empty cells, sorted ascending
// for deterministic iteration.
func (g *Grid) NonEmptyCells() []CellID {
	out := make([]CellID, 0, len(g.cells))
	for id := range g.cells {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CellsNearSegment returns the ids of all non-empty cells whose rectangle
// lies within distance eps of seg, sorted ascending. This realizes the
// ε-augmented segment-to-cell map Cε(ℓ): any object within eps of the
// segment is guaranteed to live in one of the returned cells.
func (g *Grid) CellsNearSegment(seg geo.Segment, eps float64) []CellID {
	b := seg.Bounds().Expand(eps)
	ix0 := clamp(int((b.MinX-g.bounds.MinX)/g.cellSize), 0, g.nx-1)
	ix1 := clamp(int((b.MaxX-g.bounds.MinX)/g.cellSize), 0, g.nx-1)
	iy0 := clamp(int((b.MinY-g.bounds.MinY)/g.cellSize), 0, g.ny-1)
	iy1 := clamp(int((b.MaxY-g.bounds.MinY)/g.cellSize), 0, g.ny-1)
	var out []CellID
	for iy := iy0; iy <= iy1; iy++ {
		for ix := ix0; ix <= ix1; ix++ {
			id := CellID(ix + iy*g.nx)
			if g.cells[id] == nil {
				continue
			}
			if g.CellRect(id).DistToSegment(seg) <= eps {
				out = append(out, id)
			}
		}
	}
	return out
}

// CellsNearPoint returns the ids of all non-empty cells whose rectangle
// lies within distance eps of p, sorted ascending.
func (g *Grid) CellsNearPoint(p geo.Point, eps float64) []CellID {
	ix0 := clamp(int((p.X-eps-g.bounds.MinX)/g.cellSize), 0, g.nx-1)
	ix1 := clamp(int((p.X+eps-g.bounds.MinX)/g.cellSize), 0, g.nx-1)
	iy0 := clamp(int((p.Y-eps-g.bounds.MinY)/g.cellSize), 0, g.ny-1)
	iy1 := clamp(int((p.Y+eps-g.bounds.MinY)/g.cellSize), 0, g.ny-1)
	var out []CellID
	for iy := iy0; iy <= iy1; iy++ {
		for ix := ix0; ix <= ix1; ix++ {
			id := CellID(ix + iy*g.nx)
			if g.cells[id] == nil {
				continue
			}
			if g.CellRect(id).MinDistToPoint(p) <= eps {
				out = append(out, id)
			}
		}
	}
	return out
}

// Neighborhood returns the ids of all non-empty cells within Chebyshev
// distance delta of the given cell (the (2δ+1)² block around it,
// including the cell itself). Used by the diversification spatial
// relevance bounds with delta = 2 (Eq. 12).
func (g *Grid) Neighborhood(id CellID, delta int) []CellID {
	ix, iy := g.Coords(id)
	var out []CellID
	for dy := -delta; dy <= delta; dy++ {
		y := iy + dy
		if y < 0 || y >= g.ny {
			continue
		}
		for dx := -delta; dx <= delta; dx++ {
			x := ix + dx
			if x < 0 || x >= g.nx {
				continue
			}
			nid := CellID(x + y*g.nx)
			if g.cells[nid] != nil {
				out = append(out, nid)
			}
		}
	}
	return out
}

// CellEntry pairs a cell with a per-keyword member count; the global
// inverted index entry of Section 3.2.1.
type CellEntry struct {
	Cell  CellID
	Count int
}

// Inverted is the global inverted index: for every keyword, the list of
// cells containing it with their counts, sorted decreasingly by count
// (ties broken by cell id for determinism).
type Inverted struct {
	entries map[vocab.ID][]CellEntry
}

// BuildInverted derives the global inverted index from the grid.
func (g *Grid) BuildInverted() *Inverted {
	inv := &Inverted{entries: make(map[vocab.ID][]CellEntry)}
	for id, c := range g.cells {
		for kw, postings := range c.Inv {
			inv.entries[kw] = append(inv.entries[kw], CellEntry{Cell: id, Count: len(postings)})
		}
	}
	for kw := range inv.entries {
		es := inv.entries[kw]
		sort.Slice(es, func(i, j int) bool {
			if es[i].Count != es[j].Count {
				return es[i].Count > es[j].Count
			}
			return es[i].Cell < es[j].Cell
		})
	}
	return inv
}

// Entries returns the cell list for a keyword, sorted decreasingly by
// count. The returned slice must not be modified.
func (inv *Inverted) Entries(kw vocab.ID) []CellEntry {
	return inv.entries[kw]
}

// NumKeywords returns the number of keywords with at least one posting.
func (inv *Inverted) NumKeywords() int { return len(inv.entries) }
