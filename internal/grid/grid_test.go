package grid

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geo"
	"repro/internal/vocab"
)

func buildSmall(t *testing.T) (*Grid, *vocab.Dictionary) {
	t.Helper()
	d := vocab.NewDictionary()
	locs := []geo.Point{
		geo.Pt(0.1, 0.1), geo.Pt(0.15, 0.12), // cell (0,0)
		geo.Pt(1.5, 0.1),                     // cell (1,0) with size 1
		geo.Pt(0.2, 2.7), geo.Pt(0.25, 2.75), // cell (0,2)
	}
	keys := []vocab.Set{
		d.InternAll([]string{"shop"}),
		d.InternAll([]string{"shop", "food"}),
		d.InternAll([]string{"food"}),
		d.InternAll([]string{"shop"}),
		d.InternAll([]string{"park", "shop", "food"}),
	}
	g, err := Build(Config{CellSize: 1, Bounds: geo.R(0, 0, 3, 3)}, locs, keys)
	if err != nil {
		t.Fatal(err)
	}
	return g, d
}

func TestBuildBasics(t *testing.T) {
	g, _ := buildSmall(t)
	if g.Len() != 5 {
		t.Fatalf("Len = %d", g.Len())
	}
	if g.NumCells() != 3 {
		t.Fatalf("NumCells = %d", g.NumCells())
	}
	nx, ny := g.Dims()
	if nx < 3 || ny < 3 {
		t.Fatalf("Dims = %d,%d", nx, ny)
	}
	if g.CellSize() != 1 {
		t.Fatalf("CellSize = %v", g.CellSize())
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Config{CellSize: 0}, nil, nil); err == nil {
		t.Error("expected error for zero cell size")
	}
	if _, err := Build(Config{CellSize: 1}, []geo.Point{geo.Pt(0, 0)}, []vocab.Set{nil, nil}); err == nil {
		t.Error("expected error for slice length mismatch")
	}
	if _, err := Build(Config{CellSize: 1, Bounds: geo.R(2, 0, 1, 1)}, nil, nil); err == nil {
		t.Error("expected error for invalid bounds")
	}
}

func TestBuildAutoBounds(t *testing.T) {
	locs := []geo.Point{geo.Pt(1, 1), geo.Pt(4, 5)}
	g, err := Build(Config{CellSize: 1}, locs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range locs {
		c := g.CellAt(g.CellIndex(p))
		if c == nil {
			t.Fatalf("object %d not in any cell", i)
		}
		found := false
		for _, m := range c.Members {
			if m == uint32(i) {
				found = true
			}
		}
		if !found {
			t.Fatalf("object %d missing from its cell", i)
		}
	}
}

func TestCellRectContainsMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	locs := make([]geo.Point, 500)
	for i := range locs {
		locs[i] = geo.Pt(rng.Float64()*10, rng.Float64()*10)
	}
	g, err := Build(Config{CellSize: 0.7}, locs, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	g.ForEachCell(func(id CellID, c *Cell) {
		r := g.CellRect(id)
		for _, m := range c.Members {
			if !r.Expand(1e-9).Contains(locs[m]) {
				t.Errorf("object %d at %v outside its cell rect %v", m, locs[m], r)
			}
		}
		total += len(c.Members)
	})
	if total != len(locs) {
		t.Fatalf("cells hold %d objects, want %d", total, len(locs))
	}
}

func TestCellInvertedIndex(t *testing.T) {
	g, d := buildSmall(t)
	shop, _ := d.Lookup("shop")
	food, _ := d.Lookup("food")
	c := g.CellAt(g.CellIndex(geo.Pt(0.1, 0.1)))
	if c == nil {
		t.Fatal("cell (0,0) empty")
	}
	if got := len(c.Inv[shop]); got != 2 {
		t.Errorf("shop postings = %d, want 2", got)
	}
	if got := len(c.Inv[food]); got != 1 {
		t.Errorf("food postings = %d, want 1", got)
	}
	if c.PsiMin != 1 || c.PsiMax != 2 {
		t.Errorf("psi bounds = %d,%d", c.PsiMin, c.PsiMax)
	}
	if !c.Keywords.Contains(shop) || !c.Keywords.Contains(food) {
		t.Errorf("cell keywords = %v", c.Keywords)
	}
	// Postings must be sorted ascending.
	for kw, ps := range c.Inv {
		if !sort.SliceIsSorted(ps, func(i, j int) bool { return ps[i] < ps[j] }) {
			t.Errorf("postings for kw %d not sorted: %v", kw, ps)
		}
	}
}

func TestPsiMinZeroForUntagged(t *testing.T) {
	d := vocab.NewDictionary()
	g, err := Build(Config{CellSize: 1}, []geo.Point{geo.Pt(0, 0), geo.Pt(0.1, 0.1)},
		[]vocab.Set{nil, d.InternAll([]string{"a", "b"})})
	if err != nil {
		t.Fatal(err)
	}
	c := g.CellAt(g.CellIndex(geo.Pt(0, 0)))
	if c.PsiMin != 0 || c.PsiMax != 2 {
		t.Fatalf("psi bounds = %d,%d", c.PsiMin, c.PsiMax)
	}
}

func TestCellsNearSegmentCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	locs := make([]geo.Point, 800)
	for i := range locs {
		locs[i] = geo.Pt(rng.Float64()*10, rng.Float64()*10)
	}
	g, err := Build(Config{CellSize: 0.5, Bounds: geo.R(0, 0, 10, 10)}, locs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		seg := geo.Segment{
			A: geo.Pt(rng.Float64()*10, rng.Float64()*10),
			B: geo.Pt(rng.Float64()*10, rng.Float64()*10),
		}
		eps := rng.Float64() * 1.5
		near := g.CellsNearSegment(seg, eps)
		nearSet := make(map[CellID]bool, len(near))
		for _, id := range near {
			nearSet[id] = true
			if g.CellRect(id).DistToSegment(seg) > eps+1e-9 {
				t.Fatalf("cell %d too far from segment", id)
			}
		}
		// Coverage: every object within eps lives in a returned cell.
		for i, p := range locs {
			if seg.DistToPoint(p) <= eps {
				if !nearSet[g.CellIndex(p)] {
					t.Fatalf("object %d within eps but its cell not returned", i)
				}
			}
		}
	}
}

func TestCellsNearPointCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	locs := make([]geo.Point, 500)
	for i := range locs {
		locs[i] = geo.Pt(rng.Float64()*10, rng.Float64()*10)
	}
	g, err := Build(Config{CellSize: 0.4, Bounds: geo.R(0, 0, 10, 10)}, locs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		p := geo.Pt(rng.Float64()*10, rng.Float64()*10)
		eps := rng.Float64()
		near := g.CellsNearPoint(p, eps)
		nearSet := make(map[CellID]bool, len(near))
		for _, id := range near {
			nearSet[id] = true
		}
		for i, q := range locs {
			if p.Dist(q) <= eps && !nearSet[g.CellIndex(q)] {
				t.Fatalf("object %d within eps of point but cell missing", i)
			}
		}
	}
}

func TestNeighborhood(t *testing.T) {
	locs := []geo.Point{
		geo.Pt(0.5, 0.5), geo.Pt(1.5, 0.5), geo.Pt(2.5, 0.5), geo.Pt(3.5, 0.5), geo.Pt(0.5, 1.5), geo.Pt(2.5, 2.5),
	}
	g, err := Build(Config{CellSize: 1, Bounds: geo.R(0, 0, 4, 4)}, locs, nil)
	if err != nil {
		t.Fatal(err)
	}
	center := g.CellIndex(geo.Pt(1.5, 0.5))
	got := g.Neighborhood(center, 1)
	// Within Chebyshev distance 1 of cell (1,0): cells (0,0),(1,0),(2,0),(0,1) are non-empty.
	if len(got) != 4 {
		t.Fatalf("Neighborhood(1) = %v, want 4 cells", got)
	}
	got2 := g.Neighborhood(center, 2)
	// delta=2 adds (3,0) and (2,2)... (2,2) is at Chebyshev distance max(1,2)=2: included.
	if len(got2) != 6 {
		t.Fatalf("Neighborhood(2) = %v, want 6 cells", got2)
	}
	// delta=0 is just the cell itself.
	if got0 := g.Neighborhood(center, 0); len(got0) != 1 || got0[0] != center {
		t.Fatalf("Neighborhood(0) = %v", got0)
	}
}

func TestNeighborhoodAtBorder(t *testing.T) {
	locs := []geo.Point{geo.Pt(0.5, 0.5)}
	g, err := Build(Config{CellSize: 1, Bounds: geo.R(0, 0, 2, 2)}, locs, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := g.Neighborhood(g.CellIndex(geo.Pt(0.5, 0.5)), 2)
	if len(got) != 1 {
		t.Fatalf("border Neighborhood = %v", got)
	}
}

func TestBuildInverted(t *testing.T) {
	g, d := buildSmall(t)
	inv := g.BuildInverted()
	shop, _ := d.Lookup("shop")
	es := inv.Entries(shop)
	// shop appears in cell (0,0) (objects 0,1) and cell (0,2) (objects 3,4).
	if len(es) != 2 {
		t.Fatalf("shop cells = %d, want 2", len(es))
	}
	// Sorted decreasingly by count.
	for i := 1; i < len(es); i++ {
		if es[i].Count > es[i-1].Count {
			t.Fatalf("entries not sorted: %v", es)
		}
	}
	if es[0].Count != 2 {
		t.Fatalf("top shop cell count = %d, want 2", es[0].Count)
	}
	if inv.NumKeywords() != 3 {
		t.Fatalf("NumKeywords = %d", inv.NumKeywords())
	}
	if inv.Entries(999) != nil {
		t.Fatal("unknown keyword should have nil entries")
	}
}

func TestNonEmptyCellsSorted(t *testing.T) {
	g, _ := buildSmall(t)
	ids := g.NonEmptyCells()
	if len(ids) != g.NumCells() {
		t.Fatalf("NonEmptyCells len = %d", len(ids))
	}
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
		t.Fatalf("ids not sorted: %v", ids)
	}
}

func TestClampedOutOfBoundsInsert(t *testing.T) {
	// Objects outside the configured bounds are clamped into border cells.
	locs := []geo.Point{geo.Pt(-5, -5), geo.Pt(100, 100)}
	g, err := Build(Config{CellSize: 1, Bounds: geo.R(0, 0, 10, 10)}, locs, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	g.ForEachCell(func(id CellID, c *Cell) { total += len(c.Members) })
	if total != 2 {
		t.Fatalf("clamped objects lost: %d indexed", total)
	}
}

func TestCoordsRoundTrip(t *testing.T) {
	g, _ := buildSmall(t)
	nx, ny := g.Dims()
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			id := CellID(ix + iy*nx)
			gx, gy := g.Coords(id)
			if gx != ix || gy != iy {
				t.Fatalf("Coords(%d) = %d,%d want %d,%d", id, gx, gy, ix, iy)
			}
		}
	}
}

// TestInsertMatchesBulkBuild: a grid grown with Insert must be
// structurally identical to one built with all objects upfront.
func TestInsertMatchesBulkBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 20; trial++ {
		d := vocab.NewDictionary()
		n := rng.Intn(120) + 10
		locs := make([]geo.Point, n)
		keys := make([]vocab.Set, n)
		words := []string{"a", "b", "c", "d"}
		for i := range locs {
			locs[i] = geo.Pt(rng.Float64()*5, rng.Float64()*5)
			var tags []string
			for _, w := range words {
				if rng.Float64() < 0.4 {
					tags = append(tags, w)
				}
			}
			keys[i] = d.InternAll(tags)
		}
		bounds := geo.R(0, 0, 5, 5)
		bulk, err := Build(Config{CellSize: 0.7, Bounds: bounds}, locs, keys)
		if err != nil {
			t.Fatal(err)
		}
		half := n / 2
		inc, err := Build(Config{CellSize: 0.7, Bounds: bounds}, locs[:half], keys[:half])
		if err != nil {
			t.Fatal(err)
		}
		for i := half; i < n; i++ {
			if err := inc.Insert(uint32(i), locs[i], keys[i]); err != nil {
				t.Fatal(err)
			}
		}
		if inc.Len() != bulk.Len() || inc.NumCells() != bulk.NumCells() {
			t.Fatalf("trial %d: len %d/%d cells %d/%d", trial, inc.Len(), bulk.Len(), inc.NumCells(), bulk.NumCells())
		}
		bulk.ForEachCell(func(id CellID, want *Cell) {
			got := inc.CellAt(id)
			if got == nil {
				t.Fatalf("cell %d missing after inserts", id)
			}
			if len(got.Members) != len(want.Members) {
				t.Fatalf("cell %d members %d/%d", id, len(got.Members), len(want.Members))
			}
			for i := range want.Members {
				if got.Members[i] != want.Members[i] {
					t.Fatalf("cell %d member %d differs", id, i)
				}
			}
			if got.PsiMin != want.PsiMin || got.PsiMax != want.PsiMax {
				t.Fatalf("cell %d psi %d,%d want %d,%d", id, got.PsiMin, got.PsiMax, want.PsiMin, want.PsiMax)
			}
			if !got.Keywords.Equal(want.Keywords) {
				t.Fatalf("cell %d keywords differ", id)
			}
			for kw, ps := range want.Inv {
				gps := got.Inv[kw]
				if len(gps) != len(ps) {
					t.Fatalf("cell %d kw %d postings %d/%d", id, kw, len(gps), len(ps))
				}
			}
		})
	}
}

func TestInsertRejectsOutOfOrder(t *testing.T) {
	d := vocab.NewDictionary()
	g, err := Build(Config{CellSize: 1, Bounds: geo.R(0, 0, 2, 2)},
		[]geo.Point{geo.Pt(0.5, 0.5)}, []vocab.Set{d.InternAll([]string{"x"})})
	if err != nil {
		t.Fatal(err)
	}
	// Same cell, smaller id.
	if err := g.Insert(0, geo.Pt(0.6, 0.6), nil); err == nil {
		t.Fatal("expected out-of-order error")
	}
	// New cell: any id is fine as long as the cell tail stays increasing.
	if err := g.Insert(1, geo.Pt(1.5, 1.5), nil); err != nil {
		t.Fatal(err)
	}
}

func TestInsertIntoEmptyCellPsiBounds(t *testing.T) {
	d := vocab.NewDictionary()
	g, err := Build(Config{CellSize: 1, Bounds: geo.R(0, 0, 2, 2)}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Insert(0, geo.Pt(0.5, 0.5), d.InternAll([]string{"a", "b"})); err != nil {
		t.Fatal(err)
	}
	c := g.CellAt(g.CellIndex(geo.Pt(0.5, 0.5)))
	if c.PsiMin != 2 || c.PsiMax != 2 {
		t.Fatalf("psi bounds = %d,%d, want 2,2", c.PsiMin, c.PsiMax)
	}
}

// TestParallelBuildMatchesSequential checks that the sharded parallel
// ingestion produces a grid bit-identical to the sequential build. Build
// only takes the parallel path above parallelBuildThreshold objects and
// with GOMAXPROCS ≥ 2, so the test drives buildCellsParallel directly
// with forced worker counts — including ones that don't divide the cell
// count evenly.
func TestParallelBuildMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d := vocab.NewDictionary()
	n := parallelBuildThreshold + 513
	locs := make([]geo.Point, n)
	keys := make([]vocab.Set, n)
	words := []string{"shop", "food", "park", "museum", "cafe"}
	for i := range locs {
		locs[i] = geo.Pt(rng.Float64()*9, rng.Float64()*9)
		var tags []string
		for _, w := range words {
			if rng.Float64() < 0.3 {
				tags = append(tags, w)
			}
		}
		keys[i] = d.InternAll(tags)
	}
	cfg := Config{CellSize: 0.4, Bounds: geo.R(0, 0, 9, 9)}
	seq, err := Build(cfg, locs, keys)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 7, 16} {
		par, err := Build(cfg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		par.n = n
		par.buildCellsParallel(locs, keys, workers)
		if par.NumCells() != seq.NumCells() {
			t.Fatalf("workers=%d: %d cells, want %d", workers, par.NumCells(), seq.NumCells())
		}
		seq.ForEachCell(func(id CellID, want *Cell) {
			got := par.CellAt(id)
			if got == nil {
				t.Fatalf("workers=%d: cell %d missing", workers, id)
			}
			if len(got.Members) != len(want.Members) {
				t.Fatalf("workers=%d cell %d: %d members, want %d", workers, id, len(got.Members), len(want.Members))
			}
			for i := range want.Members {
				if got.Members[i] != want.Members[i] {
					t.Fatalf("workers=%d cell %d member %d differs", workers, id, i)
				}
			}
			if got.PsiMin != want.PsiMin || got.PsiMax != want.PsiMax {
				t.Fatalf("workers=%d cell %d psi bounds differ", workers, id)
			}
			if !got.Keywords.Equal(want.Keywords) {
				t.Fatalf("workers=%d cell %d keywords differ", workers, id)
			}
			if len(got.Inv) != len(want.Inv) {
				t.Fatalf("workers=%d cell %d inverted index size differs", workers, id)
			}
			for kw, ps := range want.Inv {
				gps := got.Inv[kw]
				if len(gps) != len(ps) {
					t.Fatalf("workers=%d cell %d kw %d postings differ", workers, id, kw)
				}
				for i := range ps {
					if gps[i] != ps[i] {
						t.Fatalf("workers=%d cell %d kw %d posting %d differs", workers, id, kw, i)
					}
				}
			}
		})
	}
}
