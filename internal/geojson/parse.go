package geojson

import (
	"encoding/json"
	"fmt"
	"math"
)

// Parse decodes a GeoJSON FeatureCollection — the inverse of Write. It
// validates the structural contract this package emits: the root type,
// per-feature types, and geometry coordinate nesting per geometry kind
// (Point, LineString, MultiLineString). Coordinates are rebuilt as typed
// float slices, so writing a parsed collection produces canonical output:
// for any accepted input, write∘parse is idempotent.
func Parse(data []byte) (*FeatureCollection, error) {
	var fc FeatureCollection
	if err := json.Unmarshal(data, &fc); err != nil {
		return nil, fmt.Errorf("geojson: %w", err)
	}
	if fc.Type != "FeatureCollection" {
		return nil, fmt.Errorf("geojson: root type %q, want FeatureCollection", fc.Type)
	}
	if fc.Features == nil {
		fc.Features = []Feature{}
	}
	for i := range fc.Features {
		f := &fc.Features[i]
		if f.Type != "Feature" {
			return nil, fmt.Errorf("geojson: feature %d: type %q, want Feature", i, f.Type)
		}
		coords, err := parseCoordinates(f.Geometry.Type, f.Geometry.Coordinates)
		if err != nil {
			return nil, fmt.Errorf("geojson: feature %d: %w", i, err)
		}
		f.Geometry.Coordinates = coords
	}
	return &fc, nil
}

// parseCoordinates validates and retypes a geometry's coordinate nesting.
func parseCoordinates(geomType string, raw interface{}) (interface{}, error) {
	switch geomType {
	case "Point":
		return parsePosition(raw)
	case "LineString":
		return parseLine(raw)
	case "MultiLineString":
		list, ok := raw.([]interface{})
		if !ok {
			return nil, fmt.Errorf("MultiLineString coordinates are %T, want array", raw)
		}
		if len(list) == 0 {
			return nil, fmt.Errorf("MultiLineString has no lines")
		}
		lines := make([][][]float64, len(list))
		for i, el := range list {
			line, err := parseLine(el)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", i, err)
			}
			lines[i] = line
		}
		return lines, nil
	default:
		return nil, fmt.Errorf("unsupported geometry type %q", geomType)
	}
}

// parseLine validates a LineString coordinate array: at least two
// positions, each a finite [x, y] pair.
func parseLine(raw interface{}) ([][]float64, error) {
	list, ok := raw.([]interface{})
	if !ok {
		return nil, fmt.Errorf("LineString coordinates are %T, want array", raw)
	}
	if len(list) < 2 {
		return nil, fmt.Errorf("LineString has %d positions, want ≥ 2", len(list))
	}
	line := make([][]float64, len(list))
	for i, el := range list {
		pos, err := parsePosition(el)
		if err != nil {
			return nil, fmt.Errorf("position %d: %w", i, err)
		}
		line[i] = pos
	}
	return line, nil
}

// parsePosition validates one [x, y] position with finite coordinates.
func parsePosition(raw interface{}) ([]float64, error) {
	list, ok := raw.([]interface{})
	if !ok {
		return nil, fmt.Errorf("position is %T, want [x, y]", raw)
	}
	if len(list) != 2 {
		return nil, fmt.Errorf("position has %d components, want 2", len(list))
	}
	pos := make([]float64, 2)
	for i, el := range list {
		v, ok := el.(float64)
		if !ok {
			return nil, fmt.Errorf("coordinate %d is %T, want number", i, el)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("coordinate %d is not finite", i)
		}
		pos[i] = v
	}
	return pos, nil
}
