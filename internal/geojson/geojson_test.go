package geojson

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/photo"
	"repro/internal/route"
	"repro/internal/vocab"
)

func testNetwork(t *testing.T) *network.Network {
	t.Helper()
	b := network.NewBuilder()
	b.AddStreet("Main", []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0), geo.Pt(2, 0)})
	b.AddStreet("Side", []geo.Point{geo.Pt(2, 0), geo.Pt(2, 1)})
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// decode round-trips the collection through JSON and checks it is valid.
func decode(t *testing.T, fc *FeatureCollection) map[string]interface{} {
	t.Helper()
	var buf bytes.Buffer
	if err := fc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if out["type"] != "FeatureCollection" {
		t.Fatalf("type = %v", out["type"])
	}
	return out
}

func TestEmptyCollection(t *testing.T) {
	fc := NewCollection()
	out := decode(t, fc)
	if feats := out["features"].([]interface{}); len(feats) != 0 {
		t.Fatalf("features = %v, want an empty array (not null)", feats)
	}
}

func TestAddStreets(t *testing.T) {
	net := testNetwork(t)
	fc := NewCollection()
	fc.AddStreets(net, []core.StreetResult{
		{Street: 0, Name: "Main", Interest: 42, Mass: 7},
		{Street: 1, Name: "Side", Interest: 10, Mass: 2},
	})
	out := decode(t, fc)
	feats := out["features"].([]interface{})
	if len(feats) != 2 {
		t.Fatalf("features = %d", len(feats))
	}
	first := feats[0].(map[string]interface{})
	props := first["properties"].(map[string]interface{})
	if props["rank"].(float64) != 1 || props["name"] != "Main" {
		t.Fatalf("props = %v", props)
	}
	geom := first["geometry"].(map[string]interface{})
	if geom["type"] != "LineString" {
		t.Fatalf("geometry = %v", geom)
	}
	coords := geom["coordinates"].([]interface{})
	if len(coords) != 3 {
		t.Fatalf("Main has %d coordinates, want 3 (polyline points)", len(coords))
	}
}

func TestAddSummary(t *testing.T) {
	d := vocab.NewDictionary()
	rs := []photo.Photo{
		{ID: 0, Loc: geo.Pt(0.5, 0.1), Tags: d.InternAll([]string{"a", "b"})},
		{ID: 1, Loc: geo.Pt(0.7, 0.1), Tags: d.InternAll([]string{"c"})},
	}
	fc := NewCollection()
	fc.AddSummary("Main", rs, d, diversify.Result{Selected: []int{1, 0}})
	out := decode(t, fc)
	feats := out["features"].([]interface{})
	if len(feats) != 2 {
		t.Fatalf("features = %d", len(feats))
	}
	first := feats[0].(map[string]interface{})
	props := first["properties"].(map[string]interface{})
	if props["order"].(float64) != 1 || props["street"] != "Main" {
		t.Fatalf("props = %v", props)
	}
	tags := props["tags"].([]interface{})
	if len(tags) != 1 || tags[0] != "c" {
		t.Fatalf("tags = %v (selection order must be preserved)", tags)
	}
}

func TestAddTour(t *testing.T) {
	net := testNetwork(t)
	g := route.NewGraph(net)
	tour, err := route.Recommend(g, []route.Candidate{
		{Street: 0, Interest: 5},
		{Street: 1, Interest: 3},
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
	fc := NewCollection()
	fc.AddTour(net, tour)
	out := decode(t, fc)
	feats := out["features"].([]interface{})
	// One walk MultiLineString (when any stop has an approach) plus one
	// LineString per stop.
	wantMin := len(tour.Stops)
	if len(feats) < wantMin {
		t.Fatalf("features = %d, want at least %d", len(feats), wantMin)
	}
	kinds := map[string]int{}
	for _, f := range feats {
		props := f.(map[string]interface{})["properties"].(map[string]interface{})
		kinds[props["kind"].(string)]++
	}
	if kinds["tour-stop"] != len(tour.Stops) {
		t.Fatalf("kinds = %v", kinds)
	}
}
