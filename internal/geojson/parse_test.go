package geojson

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	fc := NewCollection()
	fc.Features = append(fc.Features,
		Feature{
			Type:     "Feature",
			Geometry: Geometry{Type: "Point", Coordinates: []float64{1.5, -2.25}},
			Properties: map[string]interface{}{
				"kind": "summary-photo", "order": 1, "tags": []string{"a", "b"},
			},
		},
		Feature{
			Type:     "Feature",
			Geometry: Geometry{Type: "LineString", Coordinates: [][]float64{{0, 0}, {1, 0}, {1, 1}}},
			Properties: map[string]interface{}{
				"kind": "street-of-interest", "interest": 0.75,
			},
		},
		Feature{
			Type:     "Feature",
			Geometry: Geometry{Type: "MultiLineString", Coordinates: [][][]float64{{{0, 0}, {1, 1}}, {{2, 2}, {3, 3}}}},
			Properties: map[string]interface{}{
				"kind": "tour-walk",
			},
		},
	)
	var w1 bytes.Buffer
	if err := fc.Write(&w1); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(w1.Bytes())
	if err != nil {
		t.Fatalf("Parse of written collection: %v", err)
	}
	if len(parsed.Features) != 3 {
		t.Fatalf("features = %d, want 3", len(parsed.Features))
	}
	pt := parsed.Features[0].Geometry.Coordinates.([]float64)
	if pt[0] != 1.5 || pt[1] != -2.25 {
		t.Fatalf("point = %v", pt)
	}
	line := parsed.Features[1].Geometry.Coordinates.([][]float64)
	if len(line) != 3 || line[2][1] != 1 {
		t.Fatalf("line = %v", line)
	}
	multi := parsed.Features[2].Geometry.Coordinates.([][][]float64)
	if len(multi) != 2 || multi[1][0][0] != 2 {
		t.Fatalf("multi = %v", multi)
	}
	var w2 bytes.Buffer
	if err := parsed.Write(&w2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Fatalf("write∘parse not idempotent:\nfirst:  %s\nsecond: %s", w1.Bytes(), w2.Bytes())
	}
}

func TestParseEmptyCollection(t *testing.T) {
	fc, err := Parse([]byte(`{"type":"FeatureCollection"}`))
	if err != nil {
		t.Fatal(err)
	}
	if fc.Features == nil {
		t.Fatal("Features = nil, want empty slice (Write must emit [], not null)")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in, errSubstr string
	}{
		{"not JSON", `{`, "unexpected end"},
		{"wrong root type", `{"type":"Feature","features":[]}`, "root type"},
		{"wrong feature type", `{"type":"FeatureCollection","features":[{"type":"Nope","geometry":{"type":"Point","coordinates":[0,0]}}]}`, "want Feature"},
		{"unknown geometry", `{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"Polygon","coordinates":[]}}]}`, "unsupported geometry"},
		{"point too short", `{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"Point","coordinates":[1]}}]}`, "components"},
		{"point non-number", `{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"Point","coordinates":[1,"a"]}}]}`, "want number"},
		{"point not array", `{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"Point","coordinates":7}}]}`, "want [x, y]"},
		{"line one position", `{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"LineString","coordinates":[[0,0]]}}]}`, "want ≥ 2"},
		{"multi empty", `{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"MultiLineString","coordinates":[]}}]}`, "no lines"},
		{"multi bad line", `{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"MultiLineString","coordinates":[[[0,0]]]}}]}`, "want ≥ 2"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(c.in))
			if err == nil {
				t.Fatal("Parse accepted invalid input")
			}
			if !strings.Contains(err.Error(), c.errSubstr) {
				t.Fatalf("error = %q, want substring %q", err, c.errSubstr)
			}
		})
	}
}

// FuzzParse holds the same property as the dataio fuzz targets: any
// input Parse accepts must canonicalize. Writing the parsed collection
// must succeed, the output must parse again, and a second write must
// reproduce the first byte-for-byte.
func FuzzParse(f *testing.F) {
	f.Add([]byte(`{"type":"FeatureCollection","features":[]}`))
	f.Add([]byte(`{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"Point","coordinates":[1.5,-2.25]},"properties":{"kind":"summary-photo","order":1}}]}`))
	f.Add([]byte(`{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"LineString","coordinates":[[0,0],[1e-3,2]]},"properties":null}]}`))
	f.Add([]byte(`{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"MultiLineString","coordinates":[[[0,0],[1,1]]]},"properties":{"length":0.5}}]}`))
	f.Add([]byte(`{"type":"Nope"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		fc, err := Parse(data)
		if err != nil {
			t.Skip()
		}
		var w1 bytes.Buffer
		if err := fc.Write(&w1); err != nil {
			t.Fatalf("write of accepted collection failed: %v", err)
		}
		fc2, err := Parse(w1.Bytes())
		if err != nil {
			t.Fatalf("re-parse of written collection failed: %v\n%s", err, w1.Bytes())
		}
		if len(fc2.Features) != len(fc.Features) {
			t.Fatalf("round-trip changed feature count: %d → %d", len(fc.Features), len(fc2.Features))
		}
		var w2 bytes.Buffer
		if err := fc2.Write(&w2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("write not idempotent:\nfirst:  %s\nsecond: %s", w1.Bytes(), w2.Bytes())
		}
	})
}
