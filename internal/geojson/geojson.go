// Package geojson renders query results as GeoJSON FeatureCollections so
// they can be inspected on a map — the medium the paper's Figures 1 and 2
// use to present Streets of Interest. Streets become LineString features
// carrying their rank and interest; photo summaries become Point features
// carrying their tags; tours become a MultiLineString walk plus stop
// markers.
package geojson

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/photo"
	"repro/internal/poi"
	"repro/internal/route"
	"repro/internal/vocab"
)

// Feature is one GeoJSON feature.
type Feature struct {
	Type       string                 `json:"type"`
	Geometry   Geometry               `json:"geometry"`
	Properties map[string]interface{} `json:"properties"`
}

// Geometry is a GeoJSON geometry; Coordinates nesting depends on Type.
type Geometry struct {
	Type        string      `json:"type"`
	Coordinates interface{} `json:"coordinates"`
}

// FeatureCollection is the GeoJSON root object.
type FeatureCollection struct {
	Type     string    `json:"type"`
	Features []Feature `json:"features"`
}

// NewCollection returns an empty feature collection.
func NewCollection() *FeatureCollection {
	return &FeatureCollection{Type: "FeatureCollection", Features: []Feature{}}
}

// Write encodes the collection as indented JSON.
func (fc *FeatureCollection) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(fc); err != nil {
		return fmt.Errorf("geojson: %w", err)
	}
	return nil
}

// streetLine returns the [ [x,y], ... ] coordinate list of a street.
func streetLine(net *network.Network, id network.StreetID) [][]float64 {
	st := net.Street(id)
	first := net.Segment(st.Segments[0])
	coords := [][]float64{{first.Geom.A.X, first.Geom.A.Y}}
	for _, sid := range st.Segments {
		p := net.Segment(sid).Geom.B
		coords = append(coords, []float64{p.X, p.Y})
	}
	return coords
}

// AddStreets appends the ranked streets of a k-SOI answer as LineString
// features with rank, interest and mass properties.
func (fc *FeatureCollection) AddStreets(net *network.Network, results []core.StreetResult) {
	for i, r := range results {
		fc.Features = append(fc.Features, Feature{
			Type: "Feature",
			Geometry: Geometry{
				Type:        "LineString",
				Coordinates: streetLine(net, r.Street),
			},
			Properties: map[string]interface{}{
				"kind":     "street-of-interest",
				"rank":     i + 1,
				"name":     r.Name,
				"interest": r.Interest,
				"mass":     r.Mass,
			},
		})
	}
}

// AddNetwork appends every street of a road network as a LineString
// feature carrying its name and id, so a whole world can be serialized
// for inspection (the soicheck repro format).
func (fc *FeatureCollection) AddNetwork(net *network.Network) {
	for i := range net.Streets() {
		id := network.StreetID(i)
		fc.Features = append(fc.Features, Feature{
			Type: "Feature",
			Geometry: Geometry{
				Type:        "LineString",
				Coordinates: streetLine(net, id),
			},
			Properties: map[string]interface{}{
				"kind":   "street",
				"street": int(id),
				"name":   net.Street(id).Name,
			},
		})
	}
}

// AddTraces appends user movement traces as LineString features with a
// "trace" kind and positional index, so trajectory repros and soigen
// outputs carry the corridors alongside the world.
func (fc *FeatureCollection) AddTraces(traces [][]geo.Point) {
	for i, tr := range traces {
		coords := make([][]float64, len(tr))
		for j, p := range tr {
			coords[j] = []float64{p.X, p.Y}
		}
		fc.Features = append(fc.Features, Feature{
			Type: "Feature",
			Geometry: Geometry{
				Type:        "LineString",
				Coordinates: coords,
			},
			Properties: map[string]interface{}{
				"kind":  "trace",
				"trace": i,
			},
		})
	}
}

// AddPOIs appends every POI of a corpus as a Point feature carrying its
// keywords and weight.
func (fc *FeatureCollection) AddPOIs(corpus *poi.Corpus) {
	dict := corpus.Dict()
	for _, p := range corpus.All() {
		fc.Features = append(fc.Features, Feature{
			Type: "Feature",
			Geometry: Geometry{
				Type:        "Point",
				Coordinates: []float64{p.Loc.X, p.Loc.Y},
			},
			Properties: map[string]interface{}{
				"kind":     "poi",
				"keywords": dict.Names(p.Keywords),
				"weight":   p.Weight,
			},
		})
	}
}

// AddPhotos appends every photo of a corpus as a Point feature carrying
// its tags.
func (fc *FeatureCollection) AddPhotos(corpus *photo.Corpus) {
	dict := corpus.Dict()
	for _, p := range corpus.All() {
		fc.Features = append(fc.Features, Feature{
			Type: "Feature",
			Geometry: Geometry{
				Type:        "Point",
				Coordinates: []float64{p.Loc.X, p.Loc.Y},
			},
			Properties: map[string]interface{}{
				"kind": "photo",
				"tags": dict.Names(p.Tags),
			},
		})
	}
}

// AddSummary appends the photos of a diversification result as Point
// features with their tags and selection order.
func (fc *FeatureCollection) AddSummary(street string, rs []photo.Photo, dict *vocab.Dictionary, res diversify.Result) {
	for order, idx := range res.Selected {
		p := rs[idx]
		fc.Features = append(fc.Features, Feature{
			Type: "Feature",
			Geometry: Geometry{
				Type:        "Point",
				Coordinates: []float64{p.Loc.X, p.Loc.Y},
			},
			Properties: map[string]interface{}{
				"kind":   "summary-photo",
				"street": street,
				"order":  order + 1,
				"tags":   dict.Names(p.Tags),
			},
		})
	}
}

// AddTour appends a recommended tour: a MultiLineString of the approach
// walks plus one Point marker per stop.
func (fc *FeatureCollection) AddTour(net *network.Network, tour route.Tour) {
	var walks [][][]float64
	for _, stop := range tour.Stops {
		if len(stop.Approach.Vertices) < 2 {
			continue
		}
		var line [][]float64
		for _, v := range stop.Approach.Vertices {
			p := net.Vertex(v)
			line = append(line, []float64{p.X, p.Y})
		}
		walks = append(walks, line)
	}
	if len(walks) > 0 {
		fc.Features = append(fc.Features, Feature{
			Type: "Feature",
			Geometry: Geometry{
				Type:        "MultiLineString",
				Coordinates: walks,
			},
			Properties: map[string]interface{}{
				"kind":   "tour-walk",
				"length": tour.Length,
			},
		})
	}
	for i, stop := range tour.Stops {
		line := streetLine(net, stop.Street)
		fc.Features = append(fc.Features, Feature{
			Type: "Feature",
			Geometry: Geometry{
				Type:        "LineString",
				Coordinates: line,
			},
			Properties: map[string]interface{}{
				"kind":     "tour-stop",
				"order":    i + 1,
				"name":     stop.Name,
				"interest": stop.Interest,
			},
		})
	}
}
