package poi

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/vocab"
)

func TestBuilderAndCorpus(t *testing.T) {
	b := NewBuilder(nil)
	a := b.Add(geo.Pt(1, 2), []string{"shop", "clothes"})
	c := b.AddWeighted(geo.Pt(3, 4), []string{"food"}, 2.5)
	corpus := b.Build()
	if corpus.Len() != 2 {
		t.Fatalf("Len = %d", corpus.Len())
	}
	pa := corpus.Get(a)
	if pa.Loc != (geo.Pt(1, 2)) || pa.Keywords.Len() != 2 || pa.Weight != 1 {
		t.Fatalf("POI a = %+v", pa)
	}
	pc := corpus.Get(c)
	if pc.Weight != 2.5 {
		t.Fatalf("POI c weight = %v", pc.Weight)
	}
	if corpus.Dict().Len() != 3 {
		t.Fatalf("dict size = %d", corpus.Dict().Len())
	}
	if len(corpus.All()) != 2 {
		t.Fatalf("All len = %d", len(corpus.All()))
	}
}

func TestBuilderAddSet(t *testing.T) {
	d := vocab.NewDictionary()
	s := d.InternAll([]string{"x"})
	b := NewBuilder(d)
	id := b.AddSet(geo.Pt(0, 0), s, 0)
	corpus := b.Build()
	if got := corpus.Get(id).Weight; got != 1 {
		t.Fatalf("default weight = %v", got)
	}
}

func TestCountRelevant(t *testing.T) {
	b := NewBuilder(nil)
	b.Add(geo.Pt(0, 0), []string{"shop"})
	b.Add(geo.Pt(0, 0), []string{"food"})
	b.Add(geo.Pt(0, 0), []string{"shop", "food"})
	b.Add(geo.Pt(0, 0), nil)
	corpus := b.Build()
	q, _ := corpus.Dict().LookupAll([]string{"shop"})
	if got := corpus.CountRelevant(q); got != 2 {
		t.Fatalf("CountRelevant(shop) = %d", got)
	}
	q2, _ := corpus.Dict().LookupAll([]string{"shop", "food"})
	if got := corpus.CountRelevant(q2); got != 3 {
		t.Fatalf("CountRelevant(shop,food) = %d", got)
	}
	if got := corpus.CountRelevant(nil); got != 0 {
		t.Fatalf("CountRelevant(nil) = %d", got)
	}
}

func TestNewCorpusValidation(t *testing.T) {
	d := vocab.NewDictionary()
	if _, err := NewCorpus([]POI{{ID: 5}}, d); err == nil {
		t.Fatal("expected error for non-dense ids")
	}
	c, err := NewCorpus([]POI{{ID: 0, Weight: 0}}, d)
	if err != nil {
		t.Fatal(err)
	}
	if c.Get(0).Weight != 1 {
		t.Fatal("zero weight not defaulted to 1")
	}
}
