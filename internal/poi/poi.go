// Package poi models the Points of Interest data source P of the paper:
// each POI is a tuple p = ⟨(x, y), Ψp⟩ of a location and a keyword set,
// optionally carrying a weight (the paper notes Def. 1 adapts
// straightforwardly to weighted POIs).
package poi

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/vocab"
)

// ID identifies a POI within a Corpus; ids are dense and start at 0.
type ID = uint32

// POI is a point of interest.
type POI struct {
	ID       ID
	Loc      geo.Point
	Keywords vocab.Set
	Weight   float64 // importance weight; 1 for the unweighted setting
}

// Corpus is an immutable collection of POIs sharing one dictionary.
type Corpus struct {
	pois []POI
	dict *vocab.Dictionary
}

// NewCorpus wraps the POIs and their dictionary into a corpus. POI ids
// must equal their slice index; this is verified and reported as an error
// because every index in the system assumes dense ids.
func NewCorpus(pois []POI, dict *vocab.Dictionary) (*Corpus, error) {
	for i := range pois {
		if pois[i].ID != ID(i) {
			return nil, fmt.Errorf("poi: id %d at index %d; ids must be dense", pois[i].ID, i)
		}
		if pois[i].Weight == 0 {
			pois[i].Weight = 1
		}
	}
	return &Corpus{pois: pois, dict: dict}, nil
}

// Len returns the number of POIs.
func (c *Corpus) Len() int { return len(c.pois) }

// Append adds a POI to the corpus, assigning the next dense id. A zero
// weight means the default weight 1. Append is not safe for concurrent
// use with readers.
func (c *Corpus) Append(loc geo.Point, keywords vocab.Set, weight float64) ID {
	if weight == 0 {
		weight = 1
	}
	id := ID(len(c.pois))
	c.pois = append(c.pois, POI{ID: id, Loc: loc, Keywords: keywords, Weight: weight})
	return id
}

// Get returns the POI with the given id.
func (c *Corpus) Get(id ID) *POI { return &c.pois[id] }

// All returns the underlying slice; callers must not modify it.
func (c *Corpus) All() []POI { return c.pois }

// Dict returns the keyword dictionary shared by the corpus.
func (c *Corpus) Dict() *vocab.Dictionary { return c.dict }

// CountRelevant returns the number of POIs whose keyword set intersects
// query (the paper's Table 4 statistic).
func (c *Corpus) CountRelevant(query vocab.Set) int {
	n := 0
	for i := range c.pois {
		if c.pois[i].Keywords.Intersects(query) {
			n++
		}
	}
	return n
}

// Builder accumulates POIs with auto-assigned dense ids.
type Builder struct {
	pois []POI
	dict *vocab.Dictionary
}

// NewBuilder returns a builder using the given dictionary (a fresh one
// when nil).
func NewBuilder(dict *vocab.Dictionary) *Builder {
	if dict == nil {
		dict = vocab.NewDictionary()
	}
	return &Builder{dict: dict}
}

// Add appends a POI with the given location and keyword strings and
// returns its id.
func (b *Builder) Add(loc geo.Point, keywords []string) ID {
	return b.AddWeighted(loc, keywords, 1)
}

// AddWeighted appends a POI with an explicit importance weight; a zero
// weight means the default weight 1, as everywhere in the package.
func (b *Builder) AddWeighted(loc geo.Point, keywords []string, weight float64) ID {
	if weight == 0 {
		weight = 1
	}
	id := ID(len(b.pois))
	b.pois = append(b.pois, POI{
		ID:       id,
		Loc:      loc,
		Keywords: b.dict.InternAll(keywords),
		Weight:   weight,
	})
	return id
}

// AddSet appends a POI whose keywords are already interned ids.
func (b *Builder) AddSet(loc geo.Point, keywords vocab.Set, weight float64) ID {
	id := ID(len(b.pois))
	if weight == 0 {
		weight = 1
	}
	b.pois = append(b.pois, POI{ID: id, Loc: loc, Keywords: keywords, Weight: weight})
	return id
}

// Build finalizes the corpus.
func (b *Builder) Build() *Corpus {
	return &Corpus{pois: b.pois, dict: b.dict}
}
