package diversify

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/network"
	"repro/internal/photo"
	"repro/internal/vocab"
)

// newTestNetwork builds a small network shared by tests in this package.
func newTestNetwork(t *testing.T) *network.Network {
	t.Helper()
	nb := network.NewBuilder()
	nb.AddStreet("Main St", []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0), geo.Pt(2, 0)})
	nb.AddStreet("Side St", []geo.Point{geo.Pt(0, 1), geo.Pt(1, 1)})
	net, err := nb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// randomContext builds a random photo context with clustered locations
// and a skewed tag distribution.
func randomContext(t *testing.T, rng *rand.Rand, n int) *Context {
	t.Helper()
	d := vocab.NewDictionary()
	vocabWords := []string{"shop", "oxford", "demo", "hmv", "bus", "night", "xmas", "rain"}
	rs := make([]photo.Photo, n)
	// A few cluster centers emulate photo hotspots.
	nClusters := rng.Intn(4) + 1
	centers := make([]geo.Point, nClusters)
	for i := range centers {
		centers[i] = geo.Pt(rng.Float64(), rng.Float64())
	}
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(nClusters)]
		loc := geo.Pt(c.X+rng.NormFloat64()*0.05, c.Y+rng.NormFloat64()*0.05)
		var tags []string
		for _, w := range vocabWords {
			if rng.Float64() < 0.25 {
				tags = append(tags, w)
			}
		}
		rs[i] = photo.Photo{ID: uint32(i), Loc: loc, Tags: d.InternAll(tags)}
	}
	freq := FreqFromPhotos(d, rs)
	ctx, err := NewContext(rs, freq, 2.0, 0.05+rng.Float64()*0.1)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// TestBoundSandwich is the core soundness property of Section 4.2.2: for
// every cell and every photo in it, the cell bounds must bracket the
// exact per-photo values of every objective component and of mmr itself.
func TestBoundSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 25; trial++ {
		ctx := randomContext(t, rng, rng.Intn(80)+5)
		w := rng.Float64()
		lambda := rng.Float64()
		k := rng.Intn(5) + 2
		p := Params{K: k, Lambda: lambda, W: w, Rho: ctx.rho}
		// A random selected set.
		var selected []int
		for i := 0; i < k-1 && i < ctx.Len(); i++ {
			selected = append(selected, rng.Intn(ctx.Len()))
		}
		ctx.grid.ForEachCell(func(cid grid.CellID, cell *grid.Cell) {
			relLo, relHi := ctx.cellRelBounds(cid, w)
			for _, m := range cell.Members {
				i := int(m)
				// Relevance sandwich.
				if r := ctx.Rel(i, w); r < relLo-1e-9 || r > relHi+1e-9 {
					t.Fatalf("trial %d: Rel(%d)=%v outside [%v,%v]", trial, i, r, relLo, relHi)
				}
				// Per-selected diversity sandwich.
				for _, j := range selected {
					dLo, dHi := ctx.cellDivBounds(cid, j, w)
					if dv := ctx.Div(i, j, w); dv < dLo-1e-9 || dv > dHi+1e-9 {
						t.Fatalf("trial %d: Div(%d,%d)=%v outside [%v,%v]", trial, i, j, dv, dLo, dHi)
					}
				}
				// Full mmr sandwich.
				mLo, mHi := ctx.MMRBounds(cid, selected, p)
				if v := ctx.MMR(i, selected, p); v < mLo-1e-9 || v > mHi+1e-9 {
					t.Fatalf("trial %d: MMR(%d)=%v outside [%v,%v]", trial, i, v, mLo, mHi)
				}
			}
		})
	}
}

// TestSpatialTextualDivBoundsBrute checks Eq. 15–18 against brute force
// over every (cell, probe photo) pair.
func TestSpatialTextualDivBoundsBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 25; trial++ {
		ctx := randomContext(t, rng, rng.Intn(60)+5)
		for probe := 0; probe < ctx.Len(); probe++ {
			ctx.grid.ForEachCell(func(cid grid.CellID, cell *grid.Cell) {
				sLo, sHi := ctx.SpatialDivBounds(cid, probe)
				tLo, tHi := ctx.TextualDivBounds(cid, probe)
				for _, m := range cell.Members {
					i := int(m)
					if d := ctx.SpatialDiv(probe, i); d < sLo-1e-9 || d > sHi+1e-9 {
						t.Fatalf("spatial div %v outside [%v,%v]", d, sLo, sHi)
					}
					if d := ctx.TextualDiv(probe, i); d < tLo-1e-9 || d > tHi+1e-9 {
						t.Fatalf("textual div %v outside [%v,%v] (probe tags %v, cell member tags %v, cΨ=%v min=%d max=%d)",
							d, tLo, tHi, ctx.photos[probe].Tags, ctx.photos[i].Tags, cell.Keywords, cell.PsiMin, cell.PsiMax)
					}
				}
			})
		}
	}
}

// TestSTRelDivMatchesBaseline: the pruned algorithm must select exactly
// the photos the exhaustive greedy baseline selects (ties are broken
// identically by photo index).
func TestSTRelDivMatchesBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 50; trial++ {
		ctx := randomContext(t, rng, rng.Intn(120)+3)
		p := Params{
			K:      rng.Intn(8) + 1,
			Lambda: float64(rng.Intn(5)) / 4,
			W:      float64(rng.Intn(5)) / 4,
			Rho:    ctx.rho,
		}
		fast, err := ctx.STRelDiv(p)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := ctx.Baseline(p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fast.Selected, slow.Selected) {
			t.Fatalf("trial %d (%+v): ST selected %v, BL selected %v", trial, p, fast.Selected, slow.Selected)
		}
		if !almostEq(fast.Objective, slow.Objective) {
			t.Fatalf("trial %d: objectives differ: %v vs %v", trial, fast.Objective, slow.Objective)
		}
	}
}

// TestGreedyNearOptimal: on tiny inputs the greedy objective must never
// exceed the exhaustive optimum, and should be a reasonable fraction of it.
func TestGreedyNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	var worst float64 = 1
	for trial := 0; trial < 30; trial++ {
		ctx := randomContext(t, rng, rng.Intn(10)+4)
		p := Params{K: 3, Lambda: 0.5, W: 0.5, Rho: ctx.rho}
		greedy, err := ctx.STRelDiv(p)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := ctx.Exhaustive(p)
		if err != nil {
			t.Fatal(err)
		}
		if greedy.Objective > opt.Objective+1e-9 {
			t.Fatalf("greedy %v exceeds optimum %v", greedy.Objective, opt.Objective)
		}
		if opt.Objective > 0 {
			if ratio := greedy.Objective / opt.Objective; ratio < worst {
				worst = ratio
			}
		}
	}
	if worst < 0.5 {
		t.Fatalf("greedy quality ratio %v below the MaxSum greedy guarantee ballpark", worst)
	}
}

func TestSTRelDivEdgeCases(t *testing.T) {
	d := vocab.NewDictionary()
	one := []photo.Photo{{ID: 0, Loc: geo.Pt(0, 0), Tags: d.InternAll([]string{"a"})}}
	ctx, err := NewContext(one, FreqFromPhotos(d, one), 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// k exceeds |Rs|: all photos returned.
	res, err := ctx.STRelDiv(Params{K: 5, Lambda: 0.5, W: 0.5, Rho: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 1 || res.Selected[0] != 0 {
		t.Fatalf("Selected = %v", res.Selected)
	}
	// Invalid params are rejected by every entry point.
	if _, err := ctx.STRelDiv(Params{}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := ctx.Baseline(Params{}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := ctx.Exhaustive(Params{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestSTRelDivPrunes(t *testing.T) {
	// Dense clustered photos: the bound logic must evaluate fewer photos
	// than the baseline does.
	rng := rand.New(rand.NewSource(65))
	ctx := randomContext(t, rng, 400)
	p := Params{K: 10, Lambda: 0.5, W: 0.5, Rho: ctx.rho}
	fast, err := ctx.STRelDiv(p)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := ctx.Baseline(p)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Stats.PhotosEvaluated >= slow.Stats.PhotosEvaluated {
		t.Fatalf("no pruning: ST evaluated %d photos, BL %d",
			fast.Stats.PhotosEvaluated, slow.Stats.PhotosEvaluated)
	}
}

func TestVariantsTable(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	ctx := randomContext(t, rng, 150)
	base := Params{K: 4, Lambda: 0.5, W: 0.5, Rho: ctx.rho}
	scores := make(map[Variant]float64)
	for _, v := range Variants {
		res, err := ctx.RunVariant(v, base)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if len(res.Selected) != base.K {
			t.Fatalf("%v: selected %d photos", v, len(res.Selected))
		}
		scores[v] = res.Objective
		if v.String() == "" {
			t.Fatalf("variant %d has no name", v)
		}
	}
	// ST_Rel+Div greedily optimizes the very objective used for scoring,
	// so it must dominate the pure-relevance variants which ignore the
	// diversity half of the objective.
	if scores[STRelDivVariant] < scores[STRel]-1e-9 {
		t.Fatalf("ST_Rel+Div %v below ST_Rel %v", scores[STRelDivVariant], scores[STRel])
	}
}

func TestVariantParams(t *testing.T) {
	base := Params{K: 3, Lambda: 0.7, W: 0.3, Rho: 0.1}
	tests := []struct {
		v      Variant
		lambda float64
		w      float64
	}{
		{SRel, 0, 1},
		{SDiv, 1, 1},
		{SRelDiv, 0.7, 1},
		{TRel, 0, 0},
		{TDiv, 1, 0},
		{TRelDiv, 0.7, 0},
		{STRel, 0, 0.3},
		{STDiv, 1, 0.3},
		{STRelDivVariant, 0.7, 0.3},
	}
	for _, tc := range tests {
		got := tc.v.params(base)
		if got.Lambda != tc.lambda || got.W != tc.w {
			t.Errorf("%v: params = λ%v w%v, want λ%v w%v", tc.v, got.Lambda, got.W, tc.lambda, tc.w)
		}
		if got.K != base.K || got.Rho != base.Rho {
			t.Errorf("%v: K/Rho not preserved", tc.v)
		}
	}
}

// TestPlantedScenario reproduces the Figure 3 failure modes: S_Rel picks
// near-duplicates at the photo hotspot, T_Rel picks the tag burst, while
// ST_Rel+Div spreads across both and the long tail.
func TestPlantedScenario(t *testing.T) {
	d := vocab.NewDictionary()
	var rs []photo.Photo
	add := func(x, y float64, tags ...string) {
		rs = append(rs, photo.Photo{ID: uint32(len(rs)), Loc: geo.Pt(x, y), Tags: d.InternAll(tags)})
	}
	// Hotspot: 10 near-duplicate photos outside "hmv" (dense spot).
	for i := 0; i < 10; i++ {
		add(0.500+float64(i)*0.0001, 0.5, "hmv", "storefront")
	}
	// Tag burst: 8 photos of a demonstration along the street.
	for i := 0; i < 8; i++ {
		add(0.1+float64(i)*0.1, 0.51, "demo", "protest", "crowd")
	}
	// Long tail: 6 scattered construction photos.
	for i := 0; i < 6; i++ {
		add(0.15*float64(i), 0.49, "construction")
	}
	freq := FreqFromPhotos(d, rs)
	ctx, err := NewContext(rs, freq, 1.5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	base := Params{K: 3, Lambda: 0.5, W: 0.5, Rho: 0.01}

	sRel, _ := ctx.RunVariant(SRel, base)
	allHotspot := true
	for _, i := range sRel.Selected {
		if i >= 10 {
			allHotspot = false
		}
	}
	if !allHotspot {
		t.Fatalf("S_Rel selected %v; expected all from the dense hotspot", sRel.Selected)
	}

	tRel, _ := ctx.RunVariant(TRel, base)
	allBurst := true
	for _, i := range tRel.Selected {
		if i < 10 || i >= 18 {
			allBurst = false
		}
	}
	if !allBurst {
		t.Fatalf("T_Rel selected %v; expected all from the tag burst", tRel.Selected)
	}

	full, _ := ctx.RunVariant(STRelDivVariant, base)
	kinds := map[string]bool{}
	for _, i := range full.Selected {
		switch {
		case i < 10:
			kinds["hotspot"] = true
		case i < 18:
			kinds["burst"] = true
		default:
			kinds["tail"] = true
		}
	}
	if len(kinds) < 2 {
		t.Fatalf("ST_Rel+Div selected %v from only %v", full.Selected, kinds)
	}
	if full.Objective < sRel.Objective || full.Objective < tRel.Objective {
		t.Fatalf("ST_Rel+Div objective %v below S_Rel %v or T_Rel %v",
			full.Objective, sRel.Objective, tRel.Objective)
	}
}

// Explicit hand-computed cases for the textual diversity bounds
// (Eq. 17–18), complementing the randomized sandwich test.
func TestTextualDivBoundsFormulas(t *testing.T) {
	// One cell containing two photos: tags {a,b} and {a,b,c} →
	// c.Ψ = {a,b,c}, ψmin = 2, ψmax = 3.
	locs := []geo.Point{geo.Pt(0, 0), geo.Pt(0.001, 0), geo.Pt(5, 5)}
	tags := [][]string{{"a", "b"}, {"a", "b", "c"}, {"a", "x"}}
	ctx, _ := buildCtx(t, locs, tags, 0.1, 10)
	cellID := ctx.grid.CellIndex(geo.Pt(0, 0))
	cell := ctx.grid.CellAt(cellID)
	if cell.PsiMin != 2 || cell.PsiMax != 3 {
		t.Fatalf("cell psi = %d,%d", cell.PsiMin, cell.PsiMax)
	}
	// Probe photo 2 has Ψr = {a, x}: |Ψr|=2, common=|{a}|=1 < ψmin=2.
	lo, hi := ctx.TextualDivBounds(cellID, 2)
	// Eq. 17 first case: 1 − 1/(2+2−1) = 2/3.
	if !almostEq(lo, 1-1.0/3) {
		t.Errorf("lo = %v, want 2/3", lo)
	}
	// Eq. 18: notCommon = |{b,c}| = 2 ≥ ψmin → hi = 1.
	if hi != 1 {
		t.Errorf("hi = %v, want 1", hi)
	}
}

func TestTextualDivBoundsSecondCase(t *testing.T) {
	// Cell photos: {a}, {a,b} → c.Ψ={a,b}, ψmin=1, ψmax=2.
	locs := []geo.Point{geo.Pt(0, 0), geo.Pt(0.001, 0), geo.Pt(5, 5)}
	tags := [][]string{{"a"}, {"a", "b"}, {"a", "b", "z"}}
	ctx, _ := buildCtx(t, locs, tags, 0.1, 10)
	cellID := ctx.grid.CellIndex(geo.Pt(0, 0))
	// Probe photo 2: Ψr={a,b,z}, |Ψr|=3, common=2 ≥ ψmin=1.
	lo, hi := ctx.TextualDivBounds(cellID, 2)
	// Eq. 17 second case: 1 − min(2, ψmax=2)/3 = 1/3.
	if !almostEq(lo, 1.0/3) {
		t.Errorf("lo = %v, want 1/3", lo)
	}
	// Eq. 18: notCommon = 0 < ψmin=1 → 1 − (1−0)/(3+0) = 2/3.
	if !almostEq(hi, 2.0/3) {
		t.Errorf("hi = %v, want 2/3", hi)
	}
}

// Explicit hand case for the textual relevance bounds (Eq. 13–14).
func TestTextualRelBoundsFormulas(t *testing.T) {
	// Photos: {a,b} and {c} in one cell plus a distant {a}.
	// Φs counts all three photos: a=2, b=1, c=1 → L1=4.
	locs := []geo.Point{geo.Pt(0, 0), geo.Pt(0.001, 0), geo.Pt(5, 5)}
	tags := [][]string{{"a", "b"}, {"c"}, {"a"}}
	ctx, _ := buildCtx(t, locs, tags, 0.1, 10)
	cellID := ctx.grid.CellIndex(geo.Pt(0, 0))
	lo := ctx.cellTextualLo[cellID]
	hi := ctx.cellTextualHi[cellID]
	// ψmin=1, ψmax=2; c.Ψ={a,b,c} all in Ψs.
	// Upper: top-2 freqs (2+1)/4 = 0.75.
	if !almostEq(hi, 0.75) {
		t.Errorf("hi = %v, want 0.75", hi)
	}
	// Lower: no out-of-support keywords, need 1 → smallest freq 1/4.
	if !almostEq(lo, 0.25) {
		t.Errorf("lo = %v, want 0.25", lo)
	}
}
