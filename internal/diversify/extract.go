package diversify

import (
	"fmt"
	"sort"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/network"
	"repro/internal/photo"
	"repro/internal/vocab"
)

// PhotoIndex accelerates the per-street photo association Rs = {r :
// dist(r, s) ≤ ε}. ExtractStreetPhotos scans the whole corpus per street;
// over a city-scale corpus this index answers the same query by visiting
// only the grid cells within ε of the street's segments. Build it once
// and reuse it across streets; it is safe for concurrent reads.
type PhotoIndex struct {
	corpus *photo.Corpus
	grid   *grid.Grid
}

// NewPhotoIndex builds a photo grid with the given cell size (a size
// close to the query ε keeps the candidate sets small).
func NewPhotoIndex(corpus *photo.Corpus, cellSize float64) (*PhotoIndex, error) {
	all := corpus.All()
	locs := make([]geo.Point, len(all))
	keys := make([]vocab.Set, len(all))
	for i := range all {
		locs[i] = all[i].Loc
		keys[i] = all[i].Tags
	}
	g, err := grid.Build(grid.Config{CellSize: cellSize}, locs, keys)
	if err != nil {
		return nil, fmt.Errorf("diversify: building photo index: %w", err)
	}
	return &PhotoIndex{corpus: corpus, grid: g}, nil
}

// StreetPhotos returns the photos within eps of the street and the
// normalizer maxD(s), like ExtractStreetPhotos but touching only ε-near
// grid cells. Results are sorted by photo id, matching the full scan.
func (pi *PhotoIndex) StreetPhotos(net *network.Network, street network.StreetID, eps float64) ([]photo.Photo, float64) {
	st := net.Street(street)
	seen := make(map[uint32]bool)
	var ids []uint32
	for _, sid := range st.Segments {
		seg := net.Segment(sid)
		for _, cid := range pi.grid.CellsNearSegment(seg.Geom, eps) {
			cell := pi.grid.CellAt(cid)
			for _, m := range cell.Members {
				if seen[m] {
					continue
				}
				// A photo near this segment is near the street; only the
				// distance to this one segment needs checking here, but a
				// photo can be within ε of the street through any
				// segment, so mark it seen only when accepted.
				if seg.Geom.DistToPoint(pi.corpus.Get(m).Loc) <= eps {
					seen[m] = true
					ids = append(ids, m)
				}
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	rs := make([]photo.Photo, len(ids))
	for i, id := range ids {
		rs[i] = *pi.corpus.Get(id)
	}
	maxD := net.StreetBounds(street).Expand(eps).Diagonal()
	return rs, maxD
}
