// Package diversify implements the paper's second contribution: the SOI
// diversification problem (Problem 2) and the ST_Rel+Div algorithm
// (Algorithm 2) that selects a small, spatio-textually relevant and
// diverse photo summary for a street, together with the exact greedy
// baseline BL and the eight single-criterion variants of Table 3
// (S/T/ST × Rel/Div/Rel+Div).
package diversify

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/network"
	"repro/internal/photo"
	"repro/internal/poi"
	"repro/internal/vocab"
)

// Params configures a diversification query.
type Params struct {
	// K is the number of photos to select.
	K int
	// Lambda trades relevance (0) against diversity (1) in Eq. 2/10.
	Lambda float64
	// W trades the textual (0) against the spatial (1) aspect in Eq. 4–5.
	W float64
	// Rho is the neighborhood radius of the spatial relevance measure
	// (Def. 4); the index grid uses cells of side Rho/2.
	Rho float64
}

// Validate reports whether the parameters are well formed.
func (p Params) Validate() error {
	if p.K <= 0 {
		return fmt.Errorf("diversify: non-positive k %d", p.K)
	}
	if p.Lambda < 0 || p.Lambda > 1 {
		return fmt.Errorf("diversify: lambda %v outside [0,1]", p.Lambda)
	}
	if p.W < 0 || p.W > 1 {
		return fmt.Errorf("diversify: w %v outside [0,1]", p.W)
	}
	if p.Rho <= 0 {
		return fmt.Errorf("diversify: non-positive rho %v", p.Rho)
	}
	return nil
}

// Context is the per-street evaluation context: the street's associated
// photos Rs, its keyword frequency vector Φs, the normalizer maxD(s), and
// the ρ/2 grid with per-cell inverted indexes of Section 4.2.1.
type Context struct {
	photos []photo.Photo // Rs; local indices 0..n-1
	freq   vocab.Freq    // Φs
	freqL1 float64       // ‖Φs‖₁
	maxD   float64       // maxD(s)
	rho    float64
	grid   *grid.Grid

	// spatialRel caches Def. 4 for every photo.
	spatialRel []float64
	// cellSpatialLo/Hi cache Eq. 11–12 per cell (R-independent).
	cellSpatialLo map[grid.CellID]float64
	cellSpatialHi map[grid.CellID]float64
	// cellTextualLo/Hi cache Eq. 13–14 per cell (R-independent).
	cellTextualLo map[grid.CellID]float64
	cellTextualHi map[grid.CellID]float64

	// features holds optional per-photo visual feature vectors (the
	// future-work extension); nil unless SetFeatures was called.
	features [][]float64
}

// ErrNoPhotos is returned when a street has no associated photos.
var ErrNoPhotos = errors.New("diversify: street has no associated photos")

// ExtractStreetPhotos returns the photos within eps of the street (the
// paper's Rs) and the normalizer maxD(s): the diagonal of the street MBR
// extended by an eps buffer.
func ExtractStreetPhotos(net *network.Network, street network.StreetID, corpus *photo.Corpus, eps float64) ([]photo.Photo, float64) {
	var rs []photo.Photo
	for _, p := range corpus.All() {
		if net.DistToStreet(p.Loc, street) <= eps {
			rs = append(rs, p)
		}
	}
	maxD := net.StreetBounds(street).Expand(eps).Diagonal()
	return rs, maxD
}

// FreqFromPhotos derives the street keyword frequency vector Φs from the
// tags of its associated photos (the default derivation; the paper notes
// Φs can come from any description of the street).
func FreqFromPhotos(dict *vocab.Dictionary, rs []photo.Photo) vocab.Freq {
	f := vocab.NewFreq(dict)
	for i := range rs {
		f.AddSet(rs[i].Tags, 1)
	}
	return f
}

// FreqFromPOIs derives Φs from the keywords of the street's ε-near POIs,
// weighted by POI importance — the paper's alternative derivation ("from
// the keywords of its neighboring POIs and/or photos").
func FreqFromPOIs(dict *vocab.Dictionary, net *network.Network, street network.StreetID, corpus *poi.Corpus, eps float64) vocab.Freq {
	f := vocab.NewFreq(dict)
	for _, p := range corpus.All() {
		if net.DistToStreet(p.Loc, street) <= eps {
			f.AddSet(p.Keywords, p.Weight)
		}
	}
	return f
}

// BlendFreq combines two frequency vectors with weight alpha on a:
// alpha·â + (1−alpha)·b̂, each normalized to unit L1 mass first so the
// blend weight is meaningful regardless of corpus sizes. Zero-mass inputs
// contribute nothing.
func BlendFreq(a, b vocab.Freq, alpha float64) vocab.Freq {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make(vocab.Freq, n)
	la, lb := a.L1(), b.L1()
	for i := range a {
		if la > 0 {
			out[i] += alpha * a[i] / la
		}
	}
	for i := range b {
		if lb > 0 {
			out[i] += (1 - alpha) * b[i] / lb
		}
	}
	return out
}

// NewContext builds the evaluation context for one street. The photos
// slice is Rs; freq is Φs; maxD is the diversity normalizer. The grid uses
// cells of side rho/2 as Section 4.2.1 prescribes.
func NewContext(rs []photo.Photo, freq vocab.Freq, maxD, rho float64) (*Context, error) {
	if len(rs) == 0 {
		return nil, ErrNoPhotos
	}
	if rho <= 0 {
		return nil, fmt.Errorf("diversify: non-positive rho %v", rho)
	}
	if maxD <= 0 {
		return nil, fmt.Errorf("diversify: non-positive maxD %v", maxD)
	}
	locs := make([]geo.Point, len(rs))
	keys := make([]vocab.Set, len(rs))
	for i := range rs {
		locs[i] = rs[i].Loc
		keys[i] = rs[i].Tags
	}
	g, err := grid.Build(grid.Config{CellSize: rho / 2}, locs, keys)
	if err != nil {
		return nil, err
	}
	ctx := &Context{
		photos: rs,
		freq:   freq,
		freqL1: freq.L1(),
		maxD:   maxD,
		rho:    rho,
		grid:   g,
	}
	ctx.precompute()
	return ctx, nil
}

// Photos returns Rs; callers must not modify it.
func (c *Context) Photos() []photo.Photo { return c.photos }

// Len returns |Rs|.
func (c *Context) Len() int { return len(c.photos) }

// MaxD returns the spatial diversity normalizer maxD(s).
func (c *Context) MaxD() float64 { return c.maxD }

// precompute fills the R-independent caches: per-photo spatial relevance
// and the per-cell relevance bounds.
func (c *Context) precompute() {
	n := len(c.photos)
	c.spatialRel = make([]float64, n)
	for i := range c.photos {
		cnt := 0
		cid := c.grid.CellIndex(c.photos[i].Loc)
		for _, nid := range c.grid.Neighborhood(cid, 2) {
			cell := c.grid.CellAt(nid)
			for _, m := range cell.Members {
				if c.photos[i].Loc.Dist(c.photos[m].Loc) <= c.rho {
					cnt++
				}
			}
		}
		c.spatialRel[i] = float64(cnt) / float64(n)
	}
	c.cellSpatialLo = make(map[grid.CellID]float64, c.grid.NumCells())
	c.cellSpatialHi = make(map[grid.CellID]float64, c.grid.NumCells())
	c.cellTextualLo = make(map[grid.CellID]float64, c.grid.NumCells())
	c.cellTextualHi = make(map[grid.CellID]float64, c.grid.NumCells())
	support := c.freq.Support()
	c.grid.ForEachCell(func(id grid.CellID, cell *grid.Cell) {
		// Eq. 11: every photo covers at least its own cell.
		c.cellSpatialLo[id] = float64(len(cell.Members)) / float64(n)
		// Eq. 12: and at most the cells within two cells away.
		total := 0
		for _, nid := range c.grid.Neighborhood(id, 2) {
			total += len(c.grid.CellAt(nid).Members)
		}
		c.cellSpatialHi[id] = float64(total) / float64(n)
		c.cellTextualLo[id], c.cellTextualHi[id] = c.textualRelBounds(cell, support)
	})
}

// textualRelBounds computes Eq. 13–14 for one cell: the minimum and
// maximum of Σ_{ψ∈Ψr} Φs(ψ)/‖Φs‖₁ over keyword sets Ψr ⊆ c.Ψ obeying the
// cell's cardinality bounds [ψmin, ψmax].
func (c *Context) textualRelBounds(cell *grid.Cell, support vocab.Set) (lo, hi float64) {
	if c.freqL1 == 0 {
		return 0, 0
	}
	inSupport := cell.Keywords.Intersect(support)
	freqs := make([]float64, 0, len(inSupport))
	for _, kw := range inSupport {
		freqs = append(freqs, c.freq[kw])
	}
	sort.Float64s(freqs) // ascending
	// Ψ+(c|s): up to ψmax keywords of c.Ψ that appear in Ψs, taking the
	// largest frequencies; padding keywords contribute zero.
	nHi := cell.PsiMax
	if nHi > len(freqs) {
		nHi = len(freqs)
	}
	for i := 0; i < nHi; i++ {
		hi += freqs[len(freqs)-1-i]
	}
	// Ψ−(c|s): prefer the ψmin keywords outside Ψs (zero frequency); any
	// shortfall is filled with the lowest in-support frequencies.
	nOutside := cell.Keywords.Len() - len(inSupport)
	need := cell.PsiMin - nOutside
	for i := 0; i < need && i < len(freqs); i++ {
		lo += freqs[i]
	}
	return lo / c.freqL1, hi / c.freqL1
}

// SpatialRel returns the spatial relevance of photo i (Def. 4).
func (c *Context) SpatialRel(i int) float64 { return c.spatialRel[i] }

// TextualRel returns the textual relevance of photo i (Def. 6); zero when
// the street has an empty keyword vector.
func (c *Context) TextualRel(i int) float64 {
	if c.freqL1 == 0 {
		return 0
	}
	return c.freq.SumOver(c.photos[i].Tags) / c.freqL1
}

// SpatialDiv returns the spatial diversity of photos i and j (Def. 5).
func (c *Context) SpatialDiv(i, j int) float64 {
	return c.photos[i].Loc.Dist(c.photos[j].Loc) / c.maxD
}

// TextualDiv returns the textual diversity of photos i and j (Def. 7).
func (c *Context) TextualDiv(i, j int) float64 {
	return c.photos[i].Tags.JaccardDistance(c.photos[j].Tags)
}

// Rel returns the blended relevance of photo i under weight w:
// w·spatial_rel + (1−w)·textual_rel (the per-photo summand of Eq. 4).
func (c *Context) Rel(i int, w float64) float64 {
	return w*c.spatialRel[i] + (1-w)*c.TextualRel(i)
}

// Div returns the blended pairwise diversity of photos i, j under weight
// w (the per-pair summand of Eq. 5).
func (c *Context) Div(i, j int, w float64) float64 {
	return w*c.SpatialDiv(i, j) + (1-w)*c.TextualDiv(i, j)
}

// MMR computes the maximal marginal relevance of candidate photo i given
// the already-selected set (Eq. 10). k is the target summary size.
func (c *Context) MMR(i int, selected []int, p Params) float64 {
	v := (1 - p.Lambda) * c.Rel(i, p.W)
	if p.K > 1 && len(selected) > 0 {
		var div float64
		for _, j := range selected {
			div += c.Div(i, j, p.W)
		}
		v += p.Lambda / float64(p.K-1) * div
	}
	return v
}

// RelScore computes rel(Rk) of Eq. 4 for a selected set.
func (c *Context) RelScore(selected []int, w float64) float64 {
	if len(selected) == 0 {
		return 0
	}
	var sum float64
	for _, i := range selected {
		sum += c.Rel(i, w)
	}
	return sum / float64(len(selected))
}

// DivScore computes div(Rk) of Eq. 5 for a selected set; zero for fewer
// than two photos.
func (c *Context) DivScore(selected []int, w float64) float64 {
	k := len(selected)
	if k < 2 {
		return 0
	}
	var sum float64
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			sum += c.Div(selected[a], selected[b], w)
		}
	}
	// Eq. 5 sums over ordered pairs with the 2/(k(k−1)) normalizer, which
	// equals the unordered-pair sum divided by k(k−1)/2.
	return sum / (float64(k) * float64(k-1) / 2)
}

// Objective computes F(Rk) of Eq. 2: (1−λ)·rel + λ·div.
func (c *Context) Objective(selected []int, p Params) float64 {
	return (1-p.Lambda)*c.RelScore(selected, p.W) + p.Lambda*c.DivScore(selected, p.W)
}

// minInt returns the smaller of a and b.
func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
