package diversify

import (
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/photo"
)

// The golden test pins the full description pipeline on a fixed world:
// dataset Small(1), the planted photo street, ε = 0.0005. Any change to
// photo extraction order, the relevance/diversity arithmetic, the grid
// bounds or the greedy tie-breaks shows up as a changed photo id or a
// changed F bit pattern. Update the constants only for a deliberate,
// understood semantic change.

const goldenStreet = "Neue Schönhauser Straße"

func goldenPool(t *testing.T) (*datagen.Dataset, []photo.Photo, float64) {
	t.Helper()
	ds, err := datagen.Generate(datagen.Small(1))
	if err != nil {
		t.Fatal(err)
	}
	st := ds.Network.StreetByName(goldenStreet)
	if st == nil {
		t.Fatalf("street %q not planted", goldenStreet)
	}
	rs, maxD := ExtractStreetPhotos(ds.Network, st.ID, ds.Photos, 0.0005)
	if len(rs) != 255 {
		t.Fatalf("photo pool size %d, want 255", len(rs))
	}
	if got := math.Float64bits(maxD); got != math.Float64bits(0.009898427662204872) {
		t.Fatalf("maxD %v, want 0.009898427662204872", maxD)
	}
	return ds, rs, maxD
}

func TestGoldenSummary(t *testing.T) {
	ds, rs, maxD := goldenPool(t)
	p := Params{K: 4, Lambda: 0.5, W: 0.5, Rho: 0.0001}
	ctx, err := NewContext(rs, FreqFromPhotos(ds.Dict, rs), maxD, p.Rho)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctx.STRelDiv(p)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []photo.ID{1305, 1383, 1419, 1215}
	if len(res.Selected) != len(wantIDs) {
		t.Fatalf("selected %d photos, want %d", len(res.Selected), len(wantIDs))
	}
	for i, li := range res.Selected {
		if rs[li].ID != wantIDs[i] {
			t.Fatalf("selection position %d: photo %d, want %d (selection %v)",
				i, rs[li].ID, wantIDs[i], res.Selected)
		}
	}
	const wantF = 0.44578717199475304
	if math.Float64bits(res.Objective) != math.Float64bits(wantF) {
		t.Fatalf("F = %v, want %v", res.Objective, wantF)
	}

	// The exact greedy baseline must agree photo for photo on the golden
	// world — the pruned construction is an optimization, not a variant.
	base, err := ctx.Baseline(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(base.Objective) != math.Float64bits(wantF) {
		t.Fatalf("baseline F = %v, want %v", base.Objective, wantF)
	}
	for i := range res.Selected {
		if res.Selected[i] != base.Selected[i] {
			t.Fatalf("baseline selection diverges at %d: %v vs %v", i, base.Selected, res.Selected)
		}
	}
}

func TestGoldenSummaryPureRelevance(t *testing.T) {
	ds, rs, maxD := goldenPool(t)
	p := Params{K: 3, Lambda: 0, W: 0.7, Rho: 0.0002}
	ctx, err := NewContext(rs, FreqFromPhotos(ds.Dict, rs), maxD, p.Rho)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctx.STRelDiv(p)
	if err != nil {
		t.Fatal(err)
	}
	wantSel := []int{110, 145, 116}
	for i := range wantSel {
		if res.Selected[i] != wantSel[i] {
			t.Fatalf("λ=0 selection %v, want %v", res.Selected, wantSel)
		}
	}
	const wantF = 0.2393577823997535
	if math.Float64bits(res.Objective) != math.Float64bits(wantF) {
		t.Fatalf("λ=0 F = %v, want %v", res.Objective, wantF)
	}
	// At λ=0 the objective IS the mean relevance of the selection.
	if got := ctx.RelScore(res.Selected, p.W); math.Float64bits(got) != math.Float64bits(res.Objective) {
		t.Fatalf("λ=0 objective %v differs from mean relevance %v", res.Objective, got)
	}
}
