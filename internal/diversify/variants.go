package diversify

import "fmt"

// Variant names one of the nine selection criteria compared in the
// paper's Table 3: which information is used (spatial, textual, or both)
// and which objective components are active (relevance, diversity, or
// both).
type Variant int

const (
	SRel Variant = iota
	SDiv
	SRelDiv
	TRel
	TDiv
	TRelDiv
	STRel
	STDiv
	STRelDivVariant
)

// Variants lists all nine criteria in the paper's Table 3 order.
var Variants = []Variant{SRel, SDiv, SRelDiv, TRel, TDiv, TRelDiv, STRel, STDiv, STRelDivVariant}

// String implements fmt.Stringer using the paper's method names.
func (v Variant) String() string {
	switch v {
	case SRel:
		return "S_Rel"
	case SDiv:
		return "S_Div"
	case SRelDiv:
		return "S_Rel+Div"
	case TRel:
		return "T_Rel"
	case TDiv:
		return "T_Div"
	case TRelDiv:
		return "T_Rel+Div"
	case STRel:
		return "ST_Rel"
	case STDiv:
		return "ST_Div"
	case STRelDivVariant:
		return "ST_Rel+Div"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// params maps the variant onto the (λ, w) parameterization of the greedy
// objective: S uses only spatial information (w=1), T only textual (w=0);
// Rel uses only relevance (λ=0), Div only diversity (λ=1). The Rel+Div
// variants keep the query's λ, and ST keeps the query's w.
func (v Variant) params(base Params) Params {
	p := base
	switch v {
	case SRel:
		p.W, p.Lambda = 1, 0
	case SDiv:
		p.W, p.Lambda = 1, 1
	case SRelDiv:
		p.W = 1
	case TRel:
		p.W, p.Lambda = 0, 0
	case TDiv:
		p.W, p.Lambda = 0, 1
	case TRelDiv:
		p.W = 0
	case STRel:
		p.Lambda = 0
	case STDiv:
		p.Lambda = 1
	}
	return p
}

// RunVariant constructs the summary under the variant's criterion and
// scores it with the *base* objective (λ, w of the query), exactly as the
// paper's Table 3 evaluates each method under the balanced objective.
func (c *Context) RunVariant(v Variant, base Params) (Result, error) {
	res, err := c.STRelDiv(v.params(base))
	if err != nil {
		return Result{}, err
	}
	res.Objective = c.Objective(res.Selected, base)
	return res, nil
}
