package diversify

import (
	"repro/internal/grid"
)

// SpatialDivBounds computes Eq. 15–16: the range of the spatial diversity
// between photo i and any photo located in cell cid.
func (c *Context) SpatialDivBounds(cid grid.CellID, i int) (lo, hi float64) {
	r := c.grid.CellRect(cid)
	p := c.photos[i].Loc
	return r.MinDistToPoint(p) / c.maxD, r.MaxDistToPoint(p) / c.maxD
}

// TextualDivBounds computes Eq. 17–18: the range of the Jaccard tag
// distance between photo i and any photo of cell cid, derived from the
// cell's keyword set c.Ψ and cardinality bounds [ψmin, ψmax].
func (c *Context) TextualDivBounds(cid grid.CellID, i int) (lo, hi float64) {
	cell := c.grid.CellAt(cid)
	tags := c.photos[i].Tags
	nr := tags.Len()
	common := cell.Keywords.IntersectCount(tags)
	notCommon := cell.Keywords.Len() - common

	// Lower bound (Eq. 17): construct Ψ+(c|r) maximizing overlap with Ψr.
	switch {
	case common < cell.PsiMin:
		// All common keywords plus padding from c.Ψ \ Ψr up to ψmin.
		lo = 1 - float64(common)/float64(nr+cell.PsiMin-common)
	default:
		m := minInt(common, cell.PsiMax)
		if nr == 0 {
			// Both tag sets can be empty: Jaccard distance 0.
			lo = 0
		} else {
			lo = 1 - float64(m)/float64(nr)
		}
	}

	// Upper bound (Eq. 18): construct Ψ−(c|r) minimizing overlap with Ψr.
	if notCommon < cell.PsiMin {
		hi = 1 - float64(cell.PsiMin-notCommon)/float64(nr+notCommon)
	} else {
		hi = 1
	}
	return lo, hi
}

// cellRelBounds returns the blended relevance bounds of a cell under
// weight w, combining the cached Eq. 11–14 bounds.
func (c *Context) cellRelBounds(cid grid.CellID, w float64) (lo, hi float64) {
	lo = w*c.cellSpatialLo[cid] + (1-w)*c.cellTextualLo[cid]
	hi = w*c.cellSpatialHi[cid] + (1-w)*c.cellTextualHi[cid]
	return lo, hi
}

// cellDivBounds returns the blended diversity bounds between any photo of
// the cell and the single photo j.
func (c *Context) cellDivBounds(cid grid.CellID, j int, w float64) (lo, hi float64) {
	sLo, sHi := c.SpatialDivBounds(cid, j)
	tLo, tHi := c.TextualDivBounds(cid, j)
	return w*sLo + (1-w)*tLo, w*sHi + (1-w)*tHi
}

// MMRBounds computes the lower and upper bounds of the mmr objective
// (Eq. 10) for any photo of cell cid given the selected set, by combining
// the relevance bounds with per-selected-photo diversity bounds.
func (c *Context) MMRBounds(cid grid.CellID, selected []int, p Params) (lo, hi float64) {
	relLo, relHi := c.cellRelBounds(cid, p.W)
	lo = (1 - p.Lambda) * relLo
	hi = (1 - p.Lambda) * relHi
	if p.K > 1 && len(selected) > 0 {
		var divLo, divHi float64
		for _, j := range selected {
			dl, dh := c.cellDivBounds(cid, j, p.W)
			divLo += dl
			divHi += dh
		}
		lo += p.Lambda / float64(p.K-1) * divLo
		hi += p.Lambda / float64(p.K-1) * divHi
	}
	return lo, hi
}
