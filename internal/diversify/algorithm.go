package diversify

import (
	"math"
	"sort"
	"time"

	"repro/internal/grid"
	"repro/internal/stats"
)

// Stats records the work performed by one summary construction.
type Stats struct {
	Elapsed time.Duration
	// Iterations counts greedy MMR selection rounds (one per selected
	// photo).
	Iterations int
	// PhotosEvaluated counts exact mmr computations.
	PhotosEvaluated int
	// CellsExamined counts cells whose bounds were computed.
	CellsExamined int
	// CellsPruned counts cells discarded by the bound tests.
	CellsPruned int
}

// Record folds one summary construction into a shared recorder;
// candidates is |Rs|, the street's candidate photo pool size. A nil
// recorder is a no-op.
func (s Stats) Record(rec *stats.Recorder, candidates int) {
	if rec == nil {
		return
	}
	d := &rec.Diversify
	d.Summaries.Add(1)
	d.Iterations.Add(int64(s.Iterations))
	d.CandidatePhotos.Add(int64(candidates))
	d.PhotosEvaluated.Add(int64(s.PhotosEvaluated))
	d.CellsExamined.Add(int64(s.CellsExamined))
	d.CellsPruned.Add(int64(s.CellsPruned))
	d.SummaryNanos.Add(s.Elapsed.Nanoseconds())
}

// Result is a constructed photo summary.
type Result struct {
	// Selected holds local indices into the context's photo slice, in
	// selection order.
	Selected []int
	// Objective is F(Rk) of Eq. 2 under the query parameters.
	Objective float64
	Stats     Stats
}

// STRelDiv runs Algorithm 2: greedy MMR over the ρ/2 grid, using the
// per-cell bounds of Section 4.2.2 to prune photos in a filtering phase
// and a refinement phase per selected photo.
func (c *Context) STRelDiv(p Params) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	var stats Stats

	selected := make([]int, 0, p.K)
	isSelected := make([]bool, len(c.photos))
	// Per-cell count of still-selectable photos.
	remaining := make(map[grid.CellID]int, c.grid.NumCells())
	// Per-cell accumulated diversity-bound sums over the selected set,
	// maintained incrementally as photos are selected.
	divLoSum := make(map[grid.CellID]float64, c.grid.NumCells())
	divHiSum := make(map[grid.CellID]float64, c.grid.NumCells())
	cells := c.grid.NonEmptyCells()
	for _, cid := range cells {
		remaining[cid] = len(c.grid.CellAt(cid).Members)
	}

	type cellBound struct {
		cid    grid.CellID
		lo, hi float64
	}
	k := p.K
	if k > len(c.photos) {
		k = len(c.photos)
	}
	for len(selected) < k {
		stats.Iterations++
		// Filtering phase: bound the mmr of every cell with candidates.
		bounds := make([]cellBound, 0, len(cells))
		mmrMin := math.Inf(-1)
		for _, cid := range cells {
			if remaining[cid] == 0 {
				continue
			}
			relLo, relHi := c.cellRelBounds(cid, p.W)
			lo := (1 - p.Lambda) * relLo
			hi := (1 - p.Lambda) * relHi
			if p.K > 1 && len(selected) > 0 {
				f := p.Lambda / float64(p.K-1)
				lo += f * divLoSum[cid]
				hi += f * divHiSum[cid]
			}
			stats.CellsExamined++
			bounds = append(bounds, cellBound{cid, lo, hi})
			if lo > mmrMin {
				mmrMin = lo
			}
		}
		// Discard cells that cannot contain the maximizer.
		cand := bounds[:0]
		for _, b := range bounds {
			if b.hi >= mmrMin {
				cand = append(cand, b)
			} else {
				stats.CellsPruned++
			}
		}
		// Refinement phase: visit candidate cells in decreasing upper
		// bound; stop when the next cell cannot beat the best exact value.
		sort.Slice(cand, func(i, j int) bool {
			if cand[i].hi != cand[j].hi {
				return cand[i].hi > cand[j].hi
			}
			return cand[i].cid < cand[j].cid
		})
		best := -1
		bestVal := math.Inf(-1)
		for _, b := range cand {
			if best >= 0 && b.hi < bestVal {
				stats.CellsPruned++
				continue
			}
			for _, m := range c.grid.CellAt(b.cid).Members {
				i := int(m)
				if isSelected[i] {
					continue
				}
				v := c.MMR(i, selected, p)
				stats.PhotosEvaluated++
				if v > bestVal || (v == bestVal && i < best) {
					bestVal = v
					best = i
				}
			}
		}
		if best < 0 {
			break // no selectable photo remains
		}
		selected = append(selected, best)
		isSelected[best] = true
		bcid := c.grid.CellIndex(c.photos[best].Loc)
		remaining[bcid]--
		// Fold the newly selected photo into the per-cell diversity sums.
		if p.K > 1 {
			for _, cid := range cells {
				dl, dh := c.cellDivBounds(cid, best, p.W)
				divLoSum[cid] += dl
				divHiSum[cid] += dh
			}
		}
	}
	stats.Elapsed = time.Since(start)
	return Result{
		Selected:  selected,
		Objective: c.Objective(selected, p),
		Stats:     stats,
	}, nil
}

// spatialRelNaive computes Def. 4 by scanning every photo of Rs — the
// cost the paper's grid-less baseline pays per evaluation. It returns
// exactly the same value as the precomputed SpatialRel.
func (c *Context) spatialRelNaive(i int) float64 {
	cnt := 0
	for j := range c.photos {
		if c.photos[i].Loc.Dist(c.photos[j].Loc) <= c.rho {
			cnt++
		}
	}
	return float64(cnt) / float64(len(c.photos))
}

// mmrNaive evaluates Eq. 10 without any index assistance: the spatial
// relevance neighborhood count is recomputed by a full scan. Identical in
// value to MMR.
func (c *Context) mmrNaive(i int, selected []int, p Params) float64 {
	rel := p.W*c.spatialRelNaive(i) + (1-p.W)*c.TextualRel(i)
	v := (1 - p.Lambda) * rel
	if p.K > 1 && len(selected) > 0 {
		var div float64
		for _, j := range selected {
			div += c.Div(i, j, p.W)
		}
		v += p.Lambda / float64(p.K-1) * div
	}
	return v
}

// Baseline runs the paper's BL: the same greedy MMR construction but
// "examining all photos in each iteration instead of operating on the
// grid cells and using the bounds" — every unselected photo is evaluated
// exactly, with no grid, no per-cell bounds and no precomputed
// neighborhood counts.
func (c *Context) Baseline(p Params) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	var stats Stats
	selected := make([]int, 0, p.K)
	isSelected := make([]bool, len(c.photos))
	k := p.K
	if k > len(c.photos) {
		k = len(c.photos)
	}
	for len(selected) < k {
		stats.Iterations++
		best := -1
		bestVal := math.Inf(-1)
		for i := range c.photos {
			if isSelected[i] {
				continue
			}
			v := c.mmrNaive(i, selected, p)
			stats.PhotosEvaluated++
			if v > bestVal {
				bestVal = v
				best = i
			}
		}
		if best < 0 {
			break
		}
		selected = append(selected, best)
		isSelected[best] = true
	}
	stats.Elapsed = time.Since(start)
	return Result{
		Selected:  selected,
		Objective: c.Objective(selected, p),
		Stats:     stats,
	}, nil
}

// Exhaustive finds the subset of size k maximizing the objective F by
// enumerating every subset. Only feasible for small |Rs|; used as the
// optimality oracle in tests and for greedy-gap measurements.
func (c *Context) Exhaustive(p Params) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	n := len(c.photos)
	k := p.K
	if k > n {
		k = n
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	best := make([]int, k)
	copy(best, idx)
	bestVal := c.Objective(idx, p)
	for {
		// Advance to the next k-combination of {0..n-1}.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
		if v := c.Objective(idx, p); v > bestVal {
			bestVal = v
			copy(best, idx)
		}
	}
	return Result{
		Selected:  best,
		Objective: bestVal,
		Stats:     Stats{Elapsed: time.Since(start)},
	}, nil
}
