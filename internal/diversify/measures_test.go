package diversify

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/photo"
	poipkg "repro/internal/poi"
	"repro/internal/vocab"
)

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

// buildCtx builds a context from explicit photo locations and tag lists.
func buildCtx(t *testing.T, locs []geo.Point, tags [][]string, rho, maxD float64) (*Context, *vocab.Dictionary) {
	t.Helper()
	d := vocab.NewDictionary()
	rs := make([]photo.Photo, len(locs))
	for i := range locs {
		rs[i] = photo.Photo{ID: uint32(i), Loc: locs[i], Tags: d.InternAll(tags[i])}
	}
	freq := FreqFromPhotos(d, rs)
	ctx, err := NewContext(rs, freq, maxD, rho)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, d
}

func TestParamsValidate(t *testing.T) {
	ok := Params{K: 3, Lambda: 0.5, W: 0.5, Rho: 0.1}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{K: 0, Lambda: 0.5, W: 0.5, Rho: 0.1},
		{K: 3, Lambda: -0.1, W: 0.5, Rho: 0.1},
		{K: 3, Lambda: 1.1, W: 0.5, Rho: 0.1},
		{K: 3, Lambda: 0.5, W: 2, Rho: 0.1},
		{K: 3, Lambda: 0.5, W: 0.5, Rho: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error for %+v", i, p)
		}
	}
}

func TestNewContextErrors(t *testing.T) {
	d := vocab.NewDictionary()
	if _, err := NewContext(nil, vocab.NewFreq(d), 1, 0.1); err != ErrNoPhotos {
		t.Fatalf("empty Rs error = %v", err)
	}
	rs := []photo.Photo{{Loc: geo.Pt(0, 0)}}
	if _, err := NewContext(rs, vocab.NewFreq(d), 1, 0); err == nil {
		t.Fatal("expected error for rho=0")
	}
	if _, err := NewContext(rs, vocab.NewFreq(d), 0, 0.1); err == nil {
		t.Fatal("expected error for maxD=0")
	}
}

func TestSpatialRel(t *testing.T) {
	// Three photos clustered within rho of each other, one far away.
	locs := []geo.Point{geo.Pt(0, 0), geo.Pt(0.02, 0), geo.Pt(0, 0.03), geo.Pt(5, 5)}
	tags := [][]string{{"a"}, {"a"}, {"a"}, {"a"}}
	ctx, _ := buildCtx(t, locs, tags, 0.1, 10)
	// Photo 0 has neighbors {0,1,2} within 0.1 → 3/4.
	if got := ctx.SpatialRel(0); !almostEq(got, 0.75) {
		t.Errorf("SpatialRel(0) = %v, want 0.75", got)
	}
	// The far photo only covers itself → 1/4.
	if got := ctx.SpatialRel(3); !almostEq(got, 0.25) {
		t.Errorf("SpatialRel(3) = %v, want 0.25", got)
	}
}

// SpatialRel must agree with an O(n²) brute-force count.
func TestSpatialRelBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(60) + 2
		locs := make([]geo.Point, n)
		tags := make([][]string, n)
		for i := range locs {
			locs[i] = geo.Pt(rng.Float64(), rng.Float64())
			tags[i] = []string{"x"}
		}
		rho := 0.05 + rng.Float64()*0.3
		ctx, _ := buildCtx(t, locs, tags, rho, 2)
		for i := 0; i < n; i++ {
			cnt := 0
			for j := 0; j < n; j++ {
				if locs[i].Dist(locs[j]) <= rho {
					cnt++
				}
			}
			want := float64(cnt) / float64(n)
			if got := ctx.SpatialRel(i); !almostEq(got, want) {
				t.Fatalf("trial %d photo %d: SpatialRel = %v, want %v", trial, i, got, want)
			}
		}
	}
}

func TestTextualRel(t *testing.T) {
	locs := []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0), geo.Pt(2, 0)}
	tags := [][]string{{"shop", "oxford"}, {"shop"}, {"demo"}}
	ctx, _ := buildCtx(t, locs, tags, 0.5, 5)
	// Φs: shop=2, oxford=1, demo=1; L1=4.
	// Photo 0: (2+1)/4 = 0.75.
	if got := ctx.TextualRel(0); !almostEq(got, 0.75) {
		t.Errorf("TextualRel(0) = %v", got)
	}
	if got := ctx.TextualRel(2); !almostEq(got, 0.25) {
		t.Errorf("TextualRel(2) = %v", got)
	}
}

func TestTextualRelEmptyFreq(t *testing.T) {
	locs := []geo.Point{geo.Pt(0, 0)}
	tags := [][]string{nil}
	ctx, _ := buildCtx(t, locs, tags, 0.5, 5)
	if got := ctx.TextualRel(0); got != 0 {
		t.Errorf("TextualRel with empty Φs = %v", got)
	}
}

func TestSpatialDiv(t *testing.T) {
	locs := []geo.Point{geo.Pt(0, 0), geo.Pt(3, 4)}
	tags := [][]string{{"a"}, {"b"}}
	ctx, _ := buildCtx(t, locs, tags, 0.5, 10)
	if got := ctx.SpatialDiv(0, 1); !almostEq(got, 0.5) {
		t.Errorf("SpatialDiv = %v, want 0.5", got)
	}
	if got := ctx.SpatialDiv(0, 0); got != 0 {
		t.Errorf("self SpatialDiv = %v", got)
	}
}

func TestTextualDiv(t *testing.T) {
	locs := []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0), geo.Pt(2, 0)}
	tags := [][]string{{"a", "b"}, {"b", "c"}, {"a", "b"}}
	ctx, _ := buildCtx(t, locs, tags, 0.5, 5)
	if got := ctx.TextualDiv(0, 1); !almostEq(got, 1-1.0/3) {
		t.Errorf("TextualDiv(0,1) = %v", got)
	}
	if got := ctx.TextualDiv(0, 2); got != 0 {
		t.Errorf("identical tags TextualDiv = %v", got)
	}
}

func TestRelDivBlend(t *testing.T) {
	locs := []geo.Point{geo.Pt(0, 0), geo.Pt(3, 4)}
	tags := [][]string{{"a"}, {"b"}}
	ctx, _ := buildCtx(t, locs, tags, 0.5, 10)
	// w=1: only spatial; w=0: only textual.
	if got := ctx.Rel(0, 1); !almostEq(got, ctx.SpatialRel(0)) {
		t.Errorf("Rel w=1 = %v", got)
	}
	if got := ctx.Rel(0, 0); !almostEq(got, ctx.TextualRel(0)) {
		t.Errorf("Rel w=0 = %v", got)
	}
	if got := ctx.Div(0, 1, 1); !almostEq(got, ctx.SpatialDiv(0, 1)) {
		t.Errorf("Div w=1 = %v", got)
	}
	if got := ctx.Div(0, 1, 0); !almostEq(got, ctx.TextualDiv(0, 1)) {
		t.Errorf("Div w=0 = %v", got)
	}
	mid := ctx.Div(0, 1, 0.5)
	want := 0.5*ctx.SpatialDiv(0, 1) + 0.5*ctx.TextualDiv(0, 1)
	if !almostEq(mid, want) {
		t.Errorf("Div w=0.5 = %v, want %v", mid, want)
	}
}

func TestMMR(t *testing.T) {
	locs := []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0), geo.Pt(2, 0)}
	tags := [][]string{{"a"}, {"b"}, {"c"}}
	ctx, _ := buildCtx(t, locs, tags, 0.5, 5)
	p := Params{K: 3, Lambda: 0.4, W: 0.5, Rho: 0.5}
	// Empty selection: mmr = (1-λ)·rel.
	if got := ctx.MMR(0, nil, p); !almostEq(got, 0.6*ctx.Rel(0, 0.5)) {
		t.Errorf("MMR empty = %v", got)
	}
	// With selection: relevance term plus λ/(k−1)·Σ div.
	sel := []int{1, 2}
	want := 0.6*ctx.Rel(0, 0.5) + 0.4/2*(ctx.Div(0, 1, 0.5)+ctx.Div(0, 2, 0.5))
	if got := ctx.MMR(0, sel, p); !almostEq(got, want) {
		t.Errorf("MMR = %v, want %v", got, want)
	}
}

func TestObjectiveScores(t *testing.T) {
	locs := []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0), geo.Pt(0, 1)}
	tags := [][]string{{"a"}, {"b"}, {"a", "b"}}
	ctx, _ := buildCtx(t, locs, tags, 0.5, 5)
	p := Params{K: 2, Lambda: 0.5, W: 0.5, Rho: 0.5}
	sel := []int{0, 1}
	rel := ctx.RelScore(sel, 0.5)
	wantRel := (ctx.Rel(0, 0.5) + ctx.Rel(1, 0.5)) / 2
	if !almostEq(rel, wantRel) {
		t.Errorf("RelScore = %v, want %v", rel, wantRel)
	}
	div := ctx.DivScore(sel, 0.5)
	if !almostEq(div, ctx.Div(0, 1, 0.5)) {
		t.Errorf("DivScore = %v, want %v", div, ctx.Div(0, 1, 0.5))
	}
	f := ctx.Objective(sel, p)
	if !almostEq(f, 0.5*rel+0.5*div) {
		t.Errorf("Objective = %v", f)
	}
	// Degenerate sets.
	if got := ctx.RelScore(nil, 0.5); got != 0 {
		t.Errorf("empty RelScore = %v", got)
	}
	if got := ctx.DivScore([]int{0}, 0.5); got != 0 {
		t.Errorf("singleton DivScore = %v", got)
	}
}

// DivScore over three photos equals the mean pairwise diversity.
func TestDivScoreNormalization(t *testing.T) {
	locs := []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0), geo.Pt(0, 1)}
	tags := [][]string{{"a"}, {"b"}, {"c"}}
	ctx, _ := buildCtx(t, locs, tags, 0.5, 5)
	sel := []int{0, 1, 2}
	want := (ctx.Div(0, 1, 0.5) + ctx.Div(0, 2, 0.5) + ctx.Div(1, 2, 0.5)) / 3
	if got := ctx.DivScore(sel, 0.5); !almostEq(got, want) {
		t.Errorf("DivScore = %v, want %v", got, want)
	}
}

func TestExtractStreetPhotosAndFreq(t *testing.T) {
	netB := newTestNetwork(t)
	d := vocab.NewDictionary()
	pb := photo.NewBuilder(d)
	pb.Add(geo.Pt(0.5, 0.05), []string{"main", "shop"}) // near Main
	pb.Add(geo.Pt(1.5, 0.02), []string{"main"})         // near Main
	pb.Add(geo.Pt(0.5, 2), []string{"far"})             // far away
	corpus := pb.Build()
	main := netB.StreetByName("Main St")
	rs, maxD := ExtractStreetPhotos(netB, main.ID, corpus, 0.1)
	if len(rs) != 2 {
		t.Fatalf("Rs = %d photos, want 2", len(rs))
	}
	// Street MBR is [0,2]x[0,0]; buffered by 0.1: diagonal of 2.2 x 0.2.
	wantD := math.Hypot(2.2, 0.2)
	if !almostEq(maxD, wantD) {
		t.Fatalf("maxD = %v, want %v", maxD, wantD)
	}
	freq := FreqFromPhotos(d, rs)
	mainKw, _ := d.Lookup("main")
	if freq[mainKw] != 2 {
		t.Fatalf("freq[main] = %v", freq[mainKw])
	}
}

func TestFreqFromPOIs(t *testing.T) {
	net := newTestNetwork(t)
	d := vocab.NewDictionary()
	pb := poipkg.NewBuilder(d)
	pb.AddWeighted(geo.Pt(0.5, 0.05), []string{"shop"}, 2)  // near Main
	pb.AddWeighted(geo.Pt(1.5, -0.05), []string{"food"}, 1) // near Main
	pb.AddWeighted(geo.Pt(0.5, 0.9), []string{"park"}, 5)   // near Side only
	corpus := pb.Build()
	main := net.StreetByName("Main St")
	f := FreqFromPOIs(d, net, main.ID, corpus, 0.1)
	shop, _ := d.Lookup("shop")
	food, _ := d.Lookup("food")
	park, _ := d.Lookup("park")
	if f[shop] != 2 || f[food] != 1 || f[park] != 0 {
		t.Fatalf("freq = shop:%v food:%v park:%v", f[shop], f[food], f[park])
	}
}

func TestBlendFreq(t *testing.T) {
	a := vocab.Freq{2, 2, 0} // L1 = 4
	b := vocab.Freq{0, 1, 1} // L1 = 2
	out := BlendFreq(a, b, 0.5)
	if !almostEq(out[0], 0.25) || !almostEq(out[1], 0.5) || !almostEq(out[2], 0.25) {
		t.Fatalf("blend = %v", out)
	}
	// Zero-mass input contributes nothing.
	z := BlendFreq(vocab.Freq{0, 0}, b, 0.5)
	if !almostEq(z[1], 0.25) || !almostEq(z[0], 0) {
		t.Fatalf("zero blend = %v", z)
	}
	// Ragged lengths are handled.
	r := BlendFreq(vocab.Freq{1}, vocab.Freq{0, 1}, 0.5)
	if len(r) != 2 || !almostEq(r[0], 0.5) || !almostEq(r[1], 0.5) {
		t.Fatalf("ragged blend = %v", r)
	}
}
