package diversify

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/photo"
)

// TestPhotoIndexMatchesScan: the grid-backed extraction must return
// exactly the same Rs and maxD as the full corpus scan, on random
// networks and corpora.
func TestPhotoIndexMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 30; trial++ {
		nb := network.NewBuilder()
		nStreets := rng.Intn(8) + 2
		for s := 0; s < nStreets; s++ {
			n := rng.Intn(4) + 2
			pts := make([]geo.Point, n)
			x, y := rng.Float64(), rng.Float64()
			pts[0] = geo.Pt(x, y)
			for i := 1; i < n; i++ {
				x += rng.NormFloat64() * 0.1
				y += rng.NormFloat64() * 0.1
				pts[i] = geo.Pt(x, y)
			}
			nb.AddStreet("s", pts)
		}
		net, err := nb.Build()
		if err != nil {
			t.Fatal(err)
		}
		pb := photo.NewBuilder(nil)
		nPhotos := rng.Intn(300) + 10
		for i := 0; i < nPhotos; i++ {
			pb.Add(geo.Pt(rng.Float64()*1.4-0.2, rng.Float64()*1.4-0.2), []string{"t"})
		}
		corpus := pb.Build()
		pi, err := NewPhotoIndex(corpus, 0.02+rng.Float64()*0.1)
		if err != nil {
			t.Fatal(err)
		}
		eps := 0.01 + rng.Float64()*0.1
		for s := 0; s < net.NumStreets(); s++ {
			sid := network.StreetID(s)
			want, wantD := ExtractStreetPhotos(net, sid, corpus, eps)
			got, gotD := pi.StreetPhotos(net, sid, eps)
			if gotD != wantD {
				t.Fatalf("maxD %v != %v", gotD, wantD)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d street %d: %d photos, want %d", trial, s, len(got), len(want))
			}
			for i := range got {
				if got[i].ID != want[i].ID {
					t.Fatalf("trial %d street %d: photo %d is %d, want %d",
						trial, s, i, got[i].ID, want[i].ID)
				}
			}
		}
	}
}

func TestPhotoIndexEmptyCorpus(t *testing.T) {
	nb := network.NewBuilder()
	nb.AddStreet("s", []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0)})
	net, _ := nb.Build()
	pi, err := NewPhotoIndex(photo.NewBuilder(nil).Build(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := pi.StreetPhotos(net, 0, 0.1)
	if len(rs) != 0 {
		t.Fatalf("Rs = %d", len(rs))
	}
}

func TestPhotoIndexBadCellSize(t *testing.T) {
	if _, err := NewPhotoIndex(photo.NewBuilder(nil).Build(), 0); err == nil {
		t.Fatal("expected error")
	}
}
