package diversify

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/photo"
)

// This file implements the paper's future-work extension: "we plan to
// enhance the diversification criteria with visual features extracted
// from the photos" (Section 6). Photos gain a feature vector (in a real
// deployment, an image embedding; here synthesizable from tags as a
// stand-in), pairwise visual diversity is their cosine distance, and the
// greedy MaxSum construction optimizes a three-way blend of spatial,
// textual and visual components.

// VisualParams extends Params with the share of the objective devoted to
// the visual component. The effective component weights are
//
//	spatial = W·(1−VisualWeight)
//	textual = (1−W)·(1−VisualWeight)
//	visual  = VisualWeight
//
// so VisualWeight = 0 reduces exactly to the base objective.
type VisualParams struct {
	Params
	VisualWeight float64
}

// Validate reports whether the parameters are well formed.
func (p VisualParams) Validate() error {
	if err := p.Params.Validate(); err != nil {
		return err
	}
	if p.VisualWeight < 0 || p.VisualWeight > 1 {
		return fmt.Errorf("diversify: visual weight %v outside [0,1]", p.VisualWeight)
	}
	return nil
}

// SetFeatures attaches one feature vector per photo (parallel to the
// context's photo slice). All vectors must share one dimensionality.
func (c *Context) SetFeatures(features [][]float64) error {
	if len(features) != len(c.photos) {
		return fmt.Errorf("diversify: %d feature vectors for %d photos", len(features), len(c.photos))
	}
	if len(features) > 0 {
		dim := len(features[0])
		for i, f := range features {
			if len(f) != dim {
				return fmt.Errorf("diversify: feature %d has dim %d, want %d", i, len(f), dim)
			}
		}
	}
	c.features = features
	return nil
}

// HasFeatures reports whether feature vectors are attached.
func (c *Context) HasFeatures() bool { return c.features != nil }

// VisualDiv returns the cosine distance between the feature vectors of
// photos i and j, in [0, 1] for non-negative features. Zero-norm vectors
// have distance 1 to everything except another zero-norm vector (0).
func (c *Context) VisualDiv(i, j int) float64 {
	a, b := c.features[i], c.features[j]
	var dot, na, nb float64
	for d := range a {
		dot += a[d] * b[d]
		na += a[d] * a[d]
		nb += b[d] * b[d]
	}
	switch {
	case na == 0 && nb == 0:
		return 0
	case na == 0 || nb == 0:
		return 1
	}
	cos := dot / math.Sqrt(na*nb)
	if cos > 1 {
		cos = 1
	}
	if cos < -1 {
		cos = -1
	}
	return 1 - cos
}

// DivVisual returns the three-way blended pairwise diversity.
func (c *Context) DivVisual(i, j int, p VisualParams) float64 {
	base := (1 - p.VisualWeight) * c.Div(i, j, p.W)
	if p.VisualWeight == 0 {
		return base
	}
	return base + p.VisualWeight*c.VisualDiv(i, j)
}

// MMRVisual is Eq. 10 with the three-way diversity blend. Relevance is
// unchanged: the extension only enriches the diversity side, as the
// paper's future-work sentence describes.
func (c *Context) MMRVisual(i int, selected []int, p VisualParams) float64 {
	// Relevance keeps its spatio-textual definition; the extension only
	// enriches the diversity side.
	v := (1 - p.Lambda) * c.Rel(i, p.W)
	if p.K > 1 && len(selected) > 0 {
		var div float64
		for _, j := range selected {
			div += c.DivVisual(i, j, p)
		}
		v += p.Lambda / float64(p.K-1) * div
	}
	return v
}

// ObjectiveVisual computes F with the three-way diversity blend.
func (c *Context) ObjectiveVisual(selected []int, p VisualParams) float64 {
	k := len(selected)
	rel := c.RelScore(selected, p.W)
	var div float64
	if k >= 2 {
		var sum float64
		for a := 0; a < k; a++ {
			for b := a + 1; b < k; b++ {
				sum += c.DivVisual(selected[a], selected[b], p)
			}
		}
		div = sum / (float64(k) * float64(k-1) / 2)
	}
	return (1-p.Lambda)*rel + p.Lambda*div
}

// GreedyVisual builds a summary with greedy MMR under the three-way
// blend. The visual component has no per-cell bounds (feature vectors do
// not aggregate into the grid cells), so every candidate is evaluated
// exactly, like the baseline.
func (c *Context) GreedyVisual(p VisualParams) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if p.VisualWeight > 0 && c.features == nil {
		return Result{}, fmt.Errorf("diversify: visual weight %v but no features attached", p.VisualWeight)
	}
	selected := make([]int, 0, p.K)
	isSelected := make([]bool, len(c.photos))
	k := p.K
	if k > len(c.photos) {
		k = len(c.photos)
	}
	var stats Stats
	for len(selected) < k {
		best := -1
		bestVal := math.Inf(-1)
		for i := range c.photos {
			if isSelected[i] {
				continue
			}
			v := c.MMRVisual(i, selected, p)
			stats.PhotosEvaluated++
			if v > bestVal {
				bestVal = v
				best = i
			}
		}
		if best < 0 {
			break
		}
		selected = append(selected, best)
		isSelected[best] = true
	}
	return Result{
		Selected:  selected,
		Objective: c.ObjectiveVisual(selected, p),
		Stats:     stats,
	}, nil
}

// HashFeatures synthesizes deterministic feature vectors from photo tag
// sets: each tag contributes to dim buckets through an FNV hash. This is
// the simulation stand-in for real image embeddings — photos with
// identical tags (the near-duplicate bursts of the generator) get
// identical vectors, overlapping tag sets get correlated vectors.
func HashFeatures(photos []photo.Photo, dim int) [][]float64 {
	if dim <= 0 {
		dim = 8
	}
	out := make([][]float64, len(photos))
	for i := range photos {
		f := make([]float64, dim)
		for _, tag := range photos[i].Tags {
			h := fnv.New64a()
			var buf [4]byte
			buf[0] = byte(tag)
			buf[1] = byte(tag >> 8)
			buf[2] = byte(tag >> 16)
			buf[3] = byte(tag >> 24)
			h.Write(buf[:])
			v := h.Sum64()
			for d := 0; d < dim; d++ {
				f[d] += float64((v>>(uint(d)*7))&0x7f) / 127
			}
		}
		out[i] = f
	}
	return out
}
