package diversify

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/photo"
)

// FuzzExtract drives the grid-accelerated photo association against the
// exhaustive full scan: for any fuzz-decoded photo corpus, cell size and
// ε, PhotoIndex.StreetPhotos must return exactly the photos (and the
// exact maxD normalizer) of ExtractStreetPhotos on every street. The
// decoder packs 5 bytes per photo (x, y, tag) after two header bytes
// (ε, cell size), so the fuzzer controls clustering, duplicates,
// photos far outside the network and photos equidistant to several
// segments.
func FuzzExtract(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{10, 40})
	f.Add([]byte{0, 0, 0x10, 0x00, 0x20, 0x00, 1})
	f.Add([]byte{255, 1, 0xff, 0xff, 0xff, 0xff, 2, 0x00, 0x10, 0x00, 0x20, 3})
	// Duplicate locations on the street junction.
	f.Add([]byte{60, 60, 0x80, 0x7f, 0x80, 0x7f, 0, 0x80, 0x7f, 0x80, 0x7f, 4})

	net := fuzzNetwork(f)
	tagPool := [][]string{
		{"shop"}, {"sunny", "shop"}, {"rain"}, {"night", "crowd"}, {},
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		// Header: ε in (0, ~0.0012], cell size in (0, ~0.002].
		eps := 0.00002 + float64(data[0])/255*0.0012
		cellSize := 0.00005 + float64(data[1])/255*0.002
		body := data[2:]

		pb := photo.NewBuilder(nil)
		for len(body) >= 5 {
			x := float64(binary.LittleEndian.Uint16(body[0:2]))/65535*0.04 - 0.01
			y := float64(binary.LittleEndian.Uint16(body[2:4]))/65535*0.04 - 0.01
			pb.Add(geo.Pt(x, y), tagPool[int(body[4])%len(tagPool)])
			body = body[5:]
		}
		corpus := pb.Build()
		if corpus.Len() == 0 {
			t.Skip()
		}

		pi, err := NewPhotoIndex(corpus, cellSize)
		if err != nil {
			t.Fatalf("building photo index: %v", err)
		}
		for i := range net.Streets() {
			sid := network.StreetID(i)
			fast, fastD := pi.StreetPhotos(net, sid, eps)
			slow, slowD := ExtractStreetPhotos(net, sid, corpus, eps)
			if math.Float64bits(fastD) != math.Float64bits(slowD) {
				t.Fatalf("street %d: maxD %v (indexed) vs %v (scan)", sid, fastD, slowD)
			}
			if len(fast) != len(slow) {
				t.Fatalf("street %d: %d photos (indexed) vs %d (scan); eps=%g cell=%g",
					sid, len(fast), len(slow), eps, cellSize)
			}
			for j := range fast {
				if fast[j].ID != slow[j].ID {
					t.Fatalf("street %d, position %d: photo %d (indexed) vs %d (scan)",
						sid, j, fast[j].ID, slow[j].ID)
				}
			}
		}
	})
}

// fuzzNetwork is the fixed street layout the extraction fuzzer queries:
// two horizontal multi-segment streets, a vertical street crossing both,
// and a short diagonal — enough geometry for photos near several
// segments of one street and near several streets at once.
func fuzzNetwork(f *testing.F) *network.Network {
	b := network.NewBuilder()
	b.AddStreet("North Row", []geo.Point{
		geo.Pt(0, 0.012), geo.Pt(0.006, 0.012), geo.Pt(0.012, 0.012), geo.Pt(0.02, 0.012),
	})
	b.AddStreet("South Row", []geo.Point{
		geo.Pt(0, 0.002), geo.Pt(0.01, 0.002), geo.Pt(0.02, 0.002),
	})
	b.AddStreet("Cross Street", []geo.Point{
		geo.Pt(0.01, 0), geo.Pt(0.01, 0.007), geo.Pt(0.01, 0.014),
	})
	b.AddStreet("Diagonal Alley", []geo.Point{
		geo.Pt(0.002, 0.003), geo.Pt(0.005, 0.006),
	})
	net, err := b.Build()
	if err != nil {
		f.Fatal(err)
	}
	return net
}
