package diversify

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geo"
	"repro/internal/photo"
	"repro/internal/vocab"
)

func visualCtx(t *testing.T) *Context {
	t.Helper()
	locs := []geo.Point{geo.Pt(0, 0), geo.Pt(0.02, 0), geo.Pt(1, 1), geo.Pt(0.5, 0.5)}
	tags := [][]string{{"hmv", "storefront"}, {"hmv", "storefront"}, {"demo"}, {"rain", "bus"}}
	ctx, _ := buildCtx(t, locs, tags, 0.1, 2)
	return ctx
}

func TestSetFeaturesValidation(t *testing.T) {
	ctx := visualCtx(t)
	if err := ctx.SetFeatures([][]float64{{1}}); err == nil {
		t.Fatal("expected error for wrong count")
	}
	if err := ctx.SetFeatures([][]float64{{1, 2}, {1}, {1, 2}, {1, 2}}); err == nil {
		t.Fatal("expected error for ragged dims")
	}
	ok := [][]float64{{1, 0}, {1, 0}, {0, 1}, {1, 1}}
	if err := ctx.SetFeatures(ok); err != nil {
		t.Fatal(err)
	}
	if !ctx.HasFeatures() {
		t.Fatal("HasFeatures = false")
	}
}

func TestVisualDiv(t *testing.T) {
	ctx := visualCtx(t)
	feats := [][]float64{{1, 0}, {1, 0}, {0, 1}, {0, 0}}
	if err := ctx.SetFeatures(feats); err != nil {
		t.Fatal(err)
	}
	if got := ctx.VisualDiv(0, 1); got != 0 {
		t.Errorf("identical features div = %v", got)
	}
	if got := ctx.VisualDiv(0, 2); almostEq(got, 1) == false {
		t.Errorf("orthogonal features div = %v, want 1", got)
	}
	if got := ctx.VisualDiv(0, 3); got != 1 {
		t.Errorf("zero-vs-nonzero div = %v, want 1", got)
	}
	if got := ctx.VisualDiv(3, 3); got != 0 {
		t.Errorf("zero-vs-zero div = %v, want 0", got)
	}
	// Symmetry.
	if ctx.VisualDiv(0, 2) != ctx.VisualDiv(2, 0) {
		t.Error("VisualDiv not symmetric")
	}
}

func TestVisualParamsValidate(t *testing.T) {
	base := Params{K: 2, Lambda: 0.5, W: 0.5, Rho: 0.1}
	if err := (VisualParams{Params: base, VisualWeight: 0.3}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (VisualParams{Params: base, VisualWeight: -0.1}).Validate(); err == nil {
		t.Fatal("expected error")
	}
	if err := (VisualParams{Params: base, VisualWeight: 1.1}).Validate(); err == nil {
		t.Fatal("expected error")
	}
	if err := (VisualParams{Params: Params{}, VisualWeight: 0.5}).Validate(); err == nil {
		t.Fatal("expected error from embedded params")
	}
}

// With VisualWeight = 0 the extended greedy must select exactly what the
// base greedy baseline selects.
func TestGreedyVisualReducesToBase(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 20; trial++ {
		ctx := randomContext(t, rng, rng.Intn(80)+5)
		p := Params{K: 4, Lambda: 0.5, W: 0.5, Rho: ctx.rho}
		vres, err := ctx.GreedyVisual(VisualParams{Params: p})
		if err != nil {
			t.Fatal(err)
		}
		base, err := ctx.Baseline(p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(vres.Selected, base.Selected) {
			t.Fatalf("trial %d: visual %v != base %v", trial, vres.Selected, base.Selected)
		}
		if !almostEq(vres.Objective, base.Objective) {
			t.Fatalf("trial %d: objectives %v vs %v", trial, vres.Objective, base.Objective)
		}
	}
}

func TestGreedyVisualRequiresFeatures(t *testing.T) {
	ctx := visualCtx(t)
	p := VisualParams{Params: Params{K: 2, Lambda: 0.5, W: 0.5, Rho: 0.1}, VisualWeight: 0.5}
	if _, err := ctx.GreedyVisual(p); err == nil {
		t.Fatal("expected error without features")
	}
}

// Visual diversity breaks up near-duplicate selections: with identical
// features on the duplicate pair and distinct ones elsewhere, raising
// VisualWeight must avoid picking both duplicates.
func TestGreedyVisualAvoidsDuplicates(t *testing.T) {
	d := vocab.NewDictionary()
	var rs []photo.Photo
	// Two visually identical photos at a relevance hotspot plus two
	// distinct ones.
	locs := []geo.Point{geo.Pt(0, 0), geo.Pt(0.001, 0), geo.Pt(0.3, 0.3), geo.Pt(0.6, 0.6)}
	tags := [][]string{{"a", "hot"}, {"b", "hot"}, {"c"}, {"d"}}
	for i := range locs {
		rs = append(rs, photo.Photo{ID: uint32(i), Loc: locs[i], Tags: d.InternAll(tags[i])})
	}
	ctx, err := NewContext(rs, FreqFromPhotos(d, rs), 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	feats := [][]float64{{1, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	if err := ctx.SetFeatures(feats); err != nil {
		t.Fatal(err)
	}
	p := VisualParams{
		Params:       Params{K: 2, Lambda: 0.9, W: 0.5, Rho: 0.05},
		VisualWeight: 0.9,
	}
	res, err := ctx.GreedyVisual(p)
	if err != nil {
		t.Fatal(err)
	}
	sel := map[int]bool{}
	for _, i := range res.Selected {
		sel[i] = true
	}
	if sel[0] && sel[1] {
		t.Fatalf("visually identical duplicates both selected: %v", res.Selected)
	}
}

func TestHashFeatures(t *testing.T) {
	d := vocab.NewDictionary()
	photos := []photo.Photo{
		{Tags: d.InternAll([]string{"a", "b"})},
		{Tags: d.InternAll([]string{"a", "b"})},
		{Tags: d.InternAll([]string{"x", "y", "z"})},
		{Tags: nil},
	}
	f := HashFeatures(photos, 8)
	if len(f) != 4 || len(f[0]) != 8 {
		t.Fatalf("shape = %d x %d", len(f), len(f[0]))
	}
	if !reflect.DeepEqual(f[0], f[1]) {
		t.Fatal("identical tag sets produced different features")
	}
	if reflect.DeepEqual(f[0], f[2]) {
		t.Fatal("distinct tag sets produced identical features")
	}
	for _, v := range f[3] {
		if v != 0 {
			t.Fatal("untagged photo should have a zero vector")
		}
	}
	// Default dimension when dim <= 0.
	if g := HashFeatures(photos, 0); len(g[0]) != 8 {
		t.Fatalf("default dim = %d", len(g[0]))
	}
}

// ObjectiveVisual with weight 0 equals Objective.
func TestObjectiveVisualReduces(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	ctx := randomContext(t, rng, 30)
	p := Params{K: 3, Lambda: 0.4, W: 0.6, Rho: ctx.rho}
	sel := []int{0, 5, 9}
	a := ctx.Objective(sel, p)
	b := ctx.ObjectiveVisual(sel, VisualParams{Params: p})
	if !almostEq(a, b) {
		t.Fatalf("objectives differ: %v vs %v", a, b)
	}
}
