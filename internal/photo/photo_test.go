package photo

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/vocab"
)

func TestBuilderAndCorpus(t *testing.T) {
	b := NewBuilder(nil)
	a := b.Add(geo.Pt(1, 2), []string{"oxford", "street"})
	corpus := b.Build()
	if corpus.Len() != 1 {
		t.Fatalf("Len = %d", corpus.Len())
	}
	pa := corpus.Get(a)
	if pa.Loc != (geo.Pt(1, 2)) || pa.Tags.Len() != 2 {
		t.Fatalf("photo = %+v", pa)
	}
	if len(corpus.All()) != 1 || corpus.Dict().Len() != 2 {
		t.Fatal("accessor mismatch")
	}
}

func TestAddSetSharedDict(t *testing.T) {
	d := vocab.NewDictionary()
	tags := d.InternAll([]string{"a", "b"})
	b := NewBuilder(d)
	id := b.AddSet(geo.Pt(0, 0), tags)
	corpus := b.Build()
	if !corpus.Get(id).Tags.Equal(tags) {
		t.Fatal("tags not preserved")
	}
	if corpus.Dict() != d {
		t.Fatal("dictionary not shared")
	}
}

func TestNewCorpusValidation(t *testing.T) {
	d := vocab.NewDictionary()
	if _, err := NewCorpus([]Photo{{ID: 3}}, d); err == nil {
		t.Fatal("expected error for non-dense ids")
	}
	if _, err := NewCorpus([]Photo{{ID: 0}, {ID: 1}}, d); err != nil {
		t.Fatal(err)
	}
}
