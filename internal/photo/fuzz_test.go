package photo

import (
	"math"
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/vocab"
)

// FuzzBuilder feeds arbitrary tag strings and coordinates through the
// builder and checks the corpus invariants every consumer relies on:
// dense ids, lossless locations, and tag interning that is normalized,
// deduplicated and idempotent (re-adding a photo's decoded tag names
// yields the identical set). The tag decoder splits the fuzz string on
// '|' so the fuzzer controls empties, whitespace, case, duplicates and
// arbitrary unicode.
func FuzzBuilder(f *testing.F) {
	f.Add("shop|food", 0.5, 0.25)
	f.Add("", 0.0, 0.0)
	f.Add(" Shop |shop|SHOP ", -1.5, 3.25)
	f.Add("a||b|  |a", 1e-300, -0.0)
	f.Add("tag,comma|Ümlaut|日本語", math.MaxFloat64, 1.0)
	f.Fuzz(func(t *testing.T, rawTags string, x, y float64) {
		tags := strings.Split(rawTags, "|")
		b := NewBuilder(nil)
		id := b.Add(geo.Pt(x, y), tags)
		if id != 0 {
			t.Fatalf("first photo got id %d", id)
		}
		id2 := b.Add(geo.Pt(x, y), tags)
		if id2 != 1 {
			t.Fatalf("second photo got id %d", id2)
		}
		c := b.Build()
		if c.Len() != 2 {
			t.Fatalf("corpus len %d, want 2", c.Len())
		}
		p := c.Get(0)
		if p.ID != 0 {
			t.Fatalf("photo 0 has id %d", p.ID)
		}
		if math.Float64bits(p.Loc.X) != math.Float64bits(x) || math.Float64bits(p.Loc.Y) != math.Float64bits(y) {
			t.Fatalf("location not preserved: got (%v, %v), want (%v, %v)", p.Loc.X, p.Loc.Y, x, y)
		}
		// Same input interned twice yields the same set.
		if !p.Tags.Equal(c.Get(1).Tags) {
			t.Fatalf("same tags interned differently: %v vs %v", p.Tags, c.Get(1).Tags)
		}
		// Interning is idempotent: decoding the names and re-interning them
		// must reproduce the set exactly.
		names := c.Dict().Names(p.Tags)
		if len(names) != p.Tags.Len() {
			t.Fatalf("Names returned %d names for a %d-tag set", len(names), p.Tags.Len())
		}
		again := c.Dict().InternAll(names)
		if !again.Equal(p.Tags) {
			t.Fatalf("re-interning decoded names changed the set: %v vs %v (names %q)", again, p.Tags, names)
		}
		// The set has no duplicates by construction.
		seen := map[vocab.ID]bool{}
		for _, tag := range p.Tags {
			if seen[tag] {
				t.Fatalf("duplicate tag id %d in interned set %v", tag, p.Tags)
			}
			seen[tag] = true
		}
	})
}
