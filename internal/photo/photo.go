// Package photo models the geo-tagged photo data source R of the paper:
// each photo is a tuple r = ⟨(x, y), Ψr⟩ of a location and a tag set
// (Section 4.1.1).
package photo

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/vocab"
)

// ID identifies a photo within a Corpus; ids are dense and start at 0.
type ID = uint32

// Photo is a geo-tagged photo.
type Photo struct {
	ID   ID
	Loc  geo.Point
	Tags vocab.Set
}

// Corpus is an immutable collection of photos sharing one dictionary.
type Corpus struct {
	photos []Photo
	dict   *vocab.Dictionary
}

// NewCorpus wraps photos and their dictionary into a corpus, verifying
// dense ids.
func NewCorpus(photos []Photo, dict *vocab.Dictionary) (*Corpus, error) {
	for i := range photos {
		if photos[i].ID != ID(i) {
			return nil, fmt.Errorf("photo: id %d at index %d; ids must be dense", photos[i].ID, i)
		}
	}
	return &Corpus{photos: photos, dict: dict}, nil
}

// Len returns the number of photos.
func (c *Corpus) Len() int { return len(c.photos) }

// Get returns the photo with the given id.
func (c *Corpus) Get(id ID) *Photo { return &c.photos[id] }

// All returns the underlying slice; callers must not modify it.
func (c *Corpus) All() []Photo { return c.photos }

// Dict returns the tag dictionary shared by the corpus.
func (c *Corpus) Dict() *vocab.Dictionary { return c.dict }

// Builder accumulates photos with auto-assigned dense ids.
type Builder struct {
	photos []Photo
	dict   *vocab.Dictionary
}

// NewBuilder returns a builder using the given dictionary (a fresh one
// when nil).
func NewBuilder(dict *vocab.Dictionary) *Builder {
	if dict == nil {
		dict = vocab.NewDictionary()
	}
	return &Builder{dict: dict}
}

// Add appends a photo with the given location and tag strings, returning
// its id.
func (b *Builder) Add(loc geo.Point, tags []string) ID {
	id := ID(len(b.photos))
	b.photos = append(b.photos, Photo{ID: id, Loc: loc, Tags: b.dict.InternAll(tags)})
	return id
}

// AddSet appends a photo whose tags are already interned ids.
func (b *Builder) AddSet(loc geo.Point, tags vocab.Set) ID {
	id := ID(len(b.photos))
	b.photos = append(b.photos, Photo{ID: id, Loc: loc, Tags: tags})
	return id
}

// Build finalizes the corpus.
func (b *Builder) Build() *Corpus {
	return &Corpus{photos: b.photos, dict: b.dict}
}
