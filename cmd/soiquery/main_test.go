package main

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataio"
)

// The tests re-exec the test binary as the CLI (see cmd/soigen's tests
// for the pattern) against a Small(1) dataset written once per run.
func TestMain(m *testing.M) {
	if os.Getenv("SOIQUERY_BE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

var (
	dataOnce sync.Once
	dataPath string
	dataErr  error
)

func dataDir(t *testing.T) string {
	t.Helper()
	dataOnce.Do(func() {
		dataPath, dataErr = os.MkdirTemp("", "soiquery-test-*")
		if dataErr != nil {
			return
		}
		var ds *datagen.Dataset
		ds, dataErr = datagen.Generate(datagen.Small(1))
		if dataErr != nil {
			return
		}
		write := func(name string, fill func(*bufio.Writer) error) {
			if dataErr != nil {
				return
			}
			var f *os.File
			f, dataErr = os.Create(filepath.Join(dataPath, name))
			if dataErr != nil {
				return
			}
			w := bufio.NewWriter(f)
			if dataErr = fill(w); dataErr == nil {
				dataErr = w.Flush()
			}
			f.Close()
		}
		write("streets.csv", func(w *bufio.Writer) error { return dataio.WriteNetwork(w, ds.Network) })
		write("pois.csv", func(w *bufio.Writer) error { return dataio.WritePOIs(w, ds.POIs) })
		write("photos.csv", func(w *bufio.Writer) error { return dataio.WritePhotos(w, ds.Photos) })
	})
	if dataErr != nil {
		t.Fatal(dataErr)
	}
	return dataPath
}

func runCLI(t *testing.T, args ...string) (stdout, stderr string, exit int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "SOIQUERY_BE_MAIN=1")
	var out, errb strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	exit = 0
	if ee, ok := err.(*exec.ExitError); ok {
		exit = ee.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	return out.String(), errb.String(), exit
}

// TestIdentifyGolden pins the CLI's ranking on the deterministic Small(1)
// dataset: exact street order, interests and masses (whitespace and the
// elapsed-time suffix excluded). Changing the query path, the CSV
// round-trip or the datagen profile shows up here.
func TestIdentifyGolden(t *testing.T) {
	stdout, stderr, exit := runCLI(t, "-data", dataDir(t), "-keywords", "shop", "-k", "3")
	if exit != 0 {
		t.Fatalf("exit %d, stderr: %s", exit, stderr)
	}
	for _, want := range []string{
		"top-3 streets for Ψ=[shop] (ε=0.0005)",
		"1. Friedrichstraße",
		"interest 33876085.6 (best-segment mass 54)",
		"2. Münzstraße",
		"interest 33364777.0 (best-segment mass 63)",
		"3. Mäusetunnel",
		"interest 31184864.3 (best-segment mass 81)",
	} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("stdout missing %q:\n%s", want, stdout)
		}
	}
}

func TestIdentifyBaselineAgrees(t *testing.T) {
	fast, _, exit := runCLI(t, "-data", dataDir(t), "-keywords", "shop,food", "-k", "5")
	if exit != 0 {
		t.Fatalf("SOI exit %d", exit)
	}
	slow, _, exit := runCLI(t, "-data", dataDir(t), "-keywords", "shop,food", "-k", "5", "-baseline")
	if exit != 0 {
		t.Fatalf("baseline exit %d", exit)
	}
	// Ranking lines (everything after the header) must match; the header
	// differs only in elapsed time, which the comparison drops.
	trim := func(s string) string {
		_, rest, ok := strings.Cut(s, ":\n")
		if !ok {
			t.Fatalf("unexpected output shape: %s", s)
		}
		return rest
	}
	if trim(fast) != trim(slow) {
		t.Fatalf("-baseline ranking differs:\nSOI:\n%s\nBL:\n%s", fast, slow)
	}
}

func TestDescribeGolden(t *testing.T) {
	stdout, stderr, exit := runCLI(t, "-data", dataDir(t),
		"-describe", "Neue Schönhauser Straße", "-photos", "3")
	if exit != 0 {
		t.Fatalf("exit %d, stderr: %s", exit, stderr)
	}
	for _, want := range []string{
		`3-photo summary of "Neue Schönhauser Straße" (|Rs|=255, λ=0.5, w=0.5, F=0.469`,
		"(0.049860, 0.037046)",
		"(0.041857, 0.037186)",
		"(0.048580, 0.037251)",
		"neue schönhauser straße",
	} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("stdout missing %q:\n%s", want, stdout)
		}
	}
}

func TestGeoJSONOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "res.geojson")
	_, stderr, exit := runCLI(t, "-data", dataDir(t), "-keywords", "shop", "-k", "2", "-geojson", out)
	if exit != 0 {
		t.Fatalf("exit %d, stderr: %s", exit, stderr)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"FeatureCollection", "Friedrichstraße"} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("geojson missing %q", want)
		}
	}
}

func TestBadInput(t *testing.T) {
	// No query mode selected.
	if _, stderr, exit := runCLI(t, "-data", dataDir(t)); exit == 0 {
		t.Fatal("missing -keywords accepted")
	} else if !strings.Contains(stderr, "provide -keywords") {
		t.Fatalf("stderr %q missing diagnosis", stderr)
	}
	// Nonexistent dataset directory.
	if _, _, exit := runCLI(t, "-data", "/nonexistent-path", "-keywords", "shop"); exit == 0 {
		t.Fatal("bad -data accepted")
	}
	// Unknown street for -describe.
	if _, stderr, exit := runCLI(t, "-data", dataDir(t), "-describe", "No Such Street"); exit == 0 {
		t.Fatal("unknown street accepted")
	} else if !strings.Contains(stderr, "unknown street") {
		t.Fatalf("stderr %q missing diagnosis", stderr)
	}
	// Invalid query parameters.
	if _, _, exit := runCLI(t, "-data", dataDir(t), "-keywords", "shop", "-k", "0"); exit == 0 {
		t.Fatal("k=0 accepted")
	}
	// Unknown flag exits 2 (flag package convention).
	if _, _, exit := runCLI(t, "-bogus"); exit != 2 {
		t.Fatalf("bad flag: exit %d, want 2", exit)
	}
}
