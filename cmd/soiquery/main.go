// Command soiquery evaluates k-SOI and street-description queries over a
// CSV dataset produced by soigen (or hand-authored in the same format).
//
// Identify the top shopping streets:
//
//	soiquery -data ./data/berlin -keywords shop -k 20
//
// Describe one street with a 4-photo diversified summary:
//
//	soiquery -data ./data/berlin -describe "Neue Schönhauser Straße" -photos 4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dataio"
	"repro/internal/diversify"
	"repro/internal/geojson"
	"repro/internal/network"
	"repro/internal/photo"
	"repro/internal/vocab"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("soiquery: ")
	var (
		dataDir  = flag.String("data", ".", "directory holding streets.csv, pois.csv, photos.csv")
		keywords = flag.String("keywords", "", "comma-separated query keywords Ψ")
		k        = flag.Int("k", 10, "number of streets (or photos with -describe)")
		eps      = flag.Float64("eps", 0.0005, "distance threshold ε in coordinate degrees")
		baseline = flag.Bool("baseline", false, "evaluate with the exact baseline BL instead of SOI")
		describe = flag.String("describe", "", "street name to describe with a photo summary")
		photosK  = flag.Int("photos", 4, "summary size for -describe")
		lambda   = flag.Float64("lambda", 0.5, "relevance/diversity trade-off λ for -describe")
		wWeight  = flag.Float64("w", 0.5, "spatial/textual weight w for -describe")
		rho      = flag.Float64("rho", 0.0001, "spatial relevance radius ρ for -describe")
		geoOut   = flag.String("geojson", "", "also write the result as GeoJSON to this file")
	)
	flag.Parse()

	net, pois, photos, dict, err := dataio.LoadDir(*dataDir)
	if err != nil {
		log.Fatal(err)
	}

	if *describe != "" {
		if err := runDescribe(net, photos, dict, *describe, *photosK, *lambda, *wWeight, *rho, *eps, *geoOut); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *keywords == "" {
		log.Fatal("provide -keywords for identification or -describe for description")
	}
	ix, err := core.NewIndex(net, pois, core.IndexConfig{CellSize: *eps})
	if err != nil {
		log.Fatal(err)
	}
	q := core.Query{Keywords: splitCSVList(*keywords), K: *k, Epsilon: *eps}
	var (
		res   []core.StreetResult
		stats core.Stats
	)
	if *baseline {
		res, stats, err = ix.Baseline(q)
	} else {
		res, stats, err = ix.SOI(q)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-%d streets for Ψ=%v (ε=%g), evaluated in %v:\n", *k, q.Keywords, *eps, stats.Total())
	for i, r := range res {
		fmt.Printf("%3d. %-40s interest %.1f (best-segment mass %.0f)\n", i+1, r.Name, r.Interest, r.Mass)
	}
	if len(res) == 0 {
		fmt.Println("no street matches the query keywords")
	}
	if *geoOut != "" {
		fc := geojson.NewCollection()
		fc.AddStreets(net, res)
		if err := writeGeoJSON(*geoOut, fc); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *geoOut)
	}
}

func writeGeoJSON(path string, fc *geojson.FeatureCollection) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fc.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runDescribe(net *network.Network, photos *photo.Corpus, dict *vocab.Dictionary,
	name string, k int, lambda, w, rho, eps float64, geoOut string) error {
	st := net.StreetByName(name)
	if st == nil {
		return fmt.Errorf("unknown street %q", name)
	}
	rs, maxD := diversify.ExtractStreetPhotos(net, st.ID, photos, eps)
	if len(rs) == 0 {
		return fmt.Errorf("street %q has no photos within ε=%g", name, eps)
	}
	ctx, err := diversify.NewContext(rs, diversify.FreqFromPhotos(dict, rs), maxD, rho)
	if err != nil {
		return err
	}
	res, err := ctx.STRelDiv(diversify.Params{K: k, Lambda: lambda, W: w, Rho: rho})
	if err != nil {
		return err
	}
	fmt.Printf("%d-photo summary of %q (|Rs|=%d, λ=%g, w=%g, F=%.3f, %v):\n",
		len(res.Selected), name, len(rs), lambda, w, res.Objective, res.Stats.Elapsed)
	for i, idx := range res.Selected {
		p := rs[idx]
		fmt.Printf("%2d. (%.6f, %.6f) tags: %s\n", i+1, p.Loc.X, p.Loc.Y,
			strings.Join(dict.Names(p.Tags), ", "))
	}
	if geoOut != "" {
		fc := geojson.NewCollection()
		fc.AddSummary(name, rs, dict, res)
		if err := writeGeoJSON(geoOut, fc); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", geoOut)
	}
	return nil
}

func splitCSVList(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}
