package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/core"
	"repro/internal/experiments"
)

// runSlabBench measures the identical sequential query workload on the
// map-based index layout and the compact slab layout, per city, and
// writes the comparison as a schema-validated BENCH artifact (see
// internal/benchfmt). Both layouts return bit-identical answers — the
// differential harness enforces that — so the artifact isolates pure
// layout cost: pointer-chasing and per-query allocation versus
// contiguous arrays and pooled scratch.
func runSlabBench(cities string, scale float64, queries int, seed int64, outPath string) error {
	out := os.Stdout
	start := time.Now()
	fmt.Fprintf(out, "Loading cities (scale %g)...\n", scale)
	citiesList, err := loadSelected(cities, scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Loaded %d cities in %v.\n", len(citiesList), time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(out, "Workload: %d queries, seed %d.\n\n", queries, seed)

	report := benchfmt.Report{
		SchemaVersion: benchfmt.SchemaVersion,
		Bench:         "slab-vs-map",
		GoVersion:     runtime.Version(),
		Scale:         scale,
		Seed:          seed,
		Queries:       queries,
	}
	workload := experiments.ParallelWorkloadSeeded(queries, seed)
	ctx := context.Background()
	for _, c := range citiesList {
		ix := c.Index
		six, err := core.NewSlabIndex(c.Dataset.Network, c.Dataset.POIs, core.IndexConfig{CellSize: experiments.Epsilon})
		if err != nil {
			return fmt.Errorf("building slab index for %s: %w", c.Name(), err)
		}
		eps := map[float64]bool{}
		for _, q := range workload {
			if !eps[q.Epsilon] {
				ix.Warm(q.Epsilon)
				six.Warm(q.Epsilon)
				eps[q.Epsilon] = true
			}
		}
		mapMetrics, err := measure(queries, func() error {
			for _, q := range workload {
				if _, _, err := ix.SOIWithStrategy(q, core.CostAware); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("map layout on %s: %w", c.Name(), err)
		}
		results := make([]core.StreetResult, 0, 64)
		slabMetrics, err := measure(queries, func() error {
			for _, q := range workload {
				var err error
				if results, _, err = six.SOIInto(ctx, q, nil, results[:0]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("slab layout on %s: %w", c.Name(), err)
		}

		st := c.Dataset.Network.Stats()
		w := benchfmt.World{
			Name:     c.Name(),
			Streets:  st.NumStreets,
			Segments: st.NumSegments,
			POIs:     c.Dataset.POIs.Len(),
			Map:      &mapMetrics,
			Slab:     &slabMetrics,
		}
		if slabMetrics.NsPerQuery > 0 {
			w.Speedup = mapMetrics.NsPerQuery / slabMetrics.NsPerQuery
		}
		if slabMetrics.AllocsPerQuery > 0 {
			w.AllocReduction = mapMetrics.AllocsPerQuery / slabMetrics.AllocsPerQuery
		} else {
			w.AllocReduction = mapMetrics.AllocsPerQuery
		}
		report.Worlds = append(report.Worlds, w)
		fmt.Fprintf(out, "%-12s map %9.0f ns/q %7.1f allocs/q | slab %9.0f ns/q %7.1f allocs/q | %5.2fx faster, %4.0fx fewer allocs\n",
			c.Name(), mapMetrics.NsPerQuery, mapMetrics.AllocsPerQuery,
			slabMetrics.NsPerQuery, slabMetrics.AllocsPerQuery, w.Speedup, w.AllocReduction)
	}

	if err := report.WriteFile(outPath); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nWrote %s (schema v%d). Done in %v.\n", outPath, benchfmt.SchemaVersion, time.Since(start).Round(time.Millisecond))
	return nil
}

// measure times one full pass of the workload loop after an untimed
// warm-up pass, bracketing it with mem-stats reads so the artifact
// carries exact allocation counts rather than testing-package estimates.
func measure(queries int, loop func() error) (benchfmt.Metrics, error) {
	if err := loop(); err != nil {
		return benchfmt.Metrics{}, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := loop(); err != nil {
		return benchfmt.Metrics{}, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(queries)
	m := benchfmt.Metrics{
		NsPerQuery:     float64(elapsed.Nanoseconds()) / n,
		AllocsPerQuery: float64(after.Mallocs-before.Mallocs) / n,
		BytesPerQuery:  float64(after.TotalAlloc-before.TotalAlloc) / n,
	}
	if elapsed > 0 {
		m.QPS = n / elapsed.Seconds()
	}
	return m, nil
}
