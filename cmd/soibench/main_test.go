package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
)

// The tests re-exec the test binary as the CLI: TestMain dispatches to
// main() when the marker variable is set, so flag parsing, log.Fatal
// exit codes and artifact output are exercised exactly as shipped.
func TestMain(m *testing.M) {
	if os.Getenv("SOIBENCH_BE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runCLI(t *testing.T, args ...string) (stdout, stderr string, exit int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "SOIBENCH_BE_MAIN=1")
	var out, errb strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	exit = 0
	if ee, ok := err.(*exec.ExitError); ok {
		exit = ee.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	return out.String(), errb.String(), exit
}

// TestShardFlagValidation: every invalid -shards/-tenants combination
// must exit non-zero with a diagnosis, before any dataset is generated.
func TestShardFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of stderr
	}{
		{"negative shards", []string{"-shards", "-3", "-json", "x.json"}, "non-negative"},
		{"one shard", []string{"-shards", "1", "-json", "x.json"}, "at least 2"},
		{"shards without json", []string{"-shards", "4"}, "requires -json"},
		{"tenants without shards", []string{"-tenants", "3", "-json", "x.json"}, "needs -shards"},
		{"zero tenants", []string{"-shards", "4", "-tenants", "0", "-json", "x.json"}, "at least one tenant"},
		{"shards with parallel", []string{"-shards", "4", "-json", "x.json", "-parallel", "2"}, "mutually exclusive"},
		{"shards with stats", []string{"-shards", "4", "-json", "x.json", "-stats"}, "mutually exclusive"},
		{"bad flag", []string{"-bogus"}, ""},
	}
	for _, c := range cases {
		_, stderr, exit := runCLI(t, c.args...)
		if exit == 0 {
			t.Errorf("%s: accepted (args %v)", c.name, c.args)
			continue
		}
		if c.want != "" && !strings.Contains(stderr, c.want) {
			t.Errorf("%s: stderr %q missing %q", c.name, stderr, c.want)
		}
	}
}

// TestShardBenchArtifact runs the sharded benchmark end to end on a
// small workload and decodes the emitted artifact through the schema
// validator: correct bench name, shard/tenant shape, and counters that
// partition the scattered shards.
func TestShardBenchArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a city and runs the full sharded workload")
	}
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	stdout, stderr, exit := runCLI(t,
		"-json", out, "-shards", "4", "-tenants", "2",
		"-queries", "6", "-scale", "0.02", "-cities", "vienna")
	if exit != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", exit, stdout, stderr)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	r, err := benchfmt.Decode(data)
	if err != nil {
		t.Fatalf("artifact fails its own schema: %v", err)
	}
	if r.Bench != "sharded-scatter-gather" {
		t.Errorf("bench %q", r.Bench)
	}
	if r.Shards != 4 || r.Tenants != 2 || r.Queries != 12 {
		t.Errorf("shape shards=%d tenants=%d queries=%d, want 4/2/12", r.Shards, r.Tenants, r.Queries)
	}
	if len(r.Worlds) != 1 {
		t.Fatalf("%d worlds", len(r.Worlds))
	}
	w := r.Worlds[0]
	if w.Single == nil || w.Sharded == nil {
		t.Fatal("missing single/sharded metrics")
	}
	if w.Map != nil || w.Slab != nil {
		t.Error("sharded artifact carries map/slab metrics")
	}
	if w.ShardsTotal == 0 || w.ShardsEvaluated+w.ShardsPruned != w.ShardsTotal {
		t.Errorf("counters don't partition the shards: %+v", w)
	}
}

// TestSlabBenchStillValidates guards the layout benchmark through the
// same CLI after the schema v2 migration.
func TestSlabBenchStillValidates(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a city and runs the full layout workload")
	}
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	_, stderr, exit := runCLI(t,
		"-json", out, "-queries", "6", "-scale", "0.02", "-cities", "vienna")
	if exit != 0 {
		t.Fatalf("exit %d, stderr: %s", exit, stderr)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	r, err := benchfmt.Decode(data)
	if err != nil {
		t.Fatalf("artifact fails its own schema: %v", err)
	}
	if r.Bench != "slab-vs-map" || len(r.Worlds) != 1 || r.Worlds[0].Map == nil || r.Worlds[0].Slab == nil {
		t.Errorf("unexpected artifact: %+v", r)
	}
}
