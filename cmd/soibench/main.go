// Command soibench regenerates the tables and figures of the paper's
// evaluation section (Section 5) over the synthetic cities.
//
// Run everything at full dataset scale (the Table 1 sizes):
//
//	soibench -exp all
//
// Run one artifact at a reduced scale for a quick look:
//
//	soibench -exp fig4 -scale 0.1 -cities london
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

var validExps = []string{"table1", "table2", "table3", "table4", "fig4", "fig5", "fig6", "ablation", "weighted", "lcmsr", "all"}

func main() {
	log.SetFlags(0)
	log.SetPrefix("soibench: ")
	var (
		exp      = flag.String("exp", "all", "experiment: "+strings.Join(validExps, ", "))
		scale    = flag.Float64("scale", 1.0, "dataset volume scale factor")
		trials   = flag.Int("trials", 3, "timing repetitions per measurement (median reported)")
		cities   = flag.String("cities", "london,berlin,vienna", "comma-separated subset of cities")
		parallel = flag.Int("parallel", 0, "run the parallel query throughput benchmark with N workers and exit")
		queries  = flag.Int("queries", 150, "workload size per city for -parallel")
	)
	flag.Parse()

	if *parallel < 0 {
		log.Fatalf("-parallel needs a positive worker count, got %d", *parallel)
	}
	if *parallel > 0 {
		if *queries <= 0 {
			log.Fatalf("-queries needs a positive workload size, got %d", *queries)
		}
		if err := runParallel(*cities, *scale, *parallel, *queries); err != nil {
			log.Fatal(err)
		}
		return
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		e = strings.TrimSpace(strings.ToLower(e))
		ok := false
		for _, v := range validExps {
			if e == v {
				ok = true
			}
		}
		if !ok {
			log.Fatalf("unknown experiment %q (want one of %s)", e, strings.Join(validExps, ", "))
		}
		want[e] = true
	}
	all := want["all"]
	out := os.Stdout

	start := time.Now()
	fmt.Fprintf(out, "Loading cities (scale %g)...\n", *scale)
	citiesList, err := loadSelected(*cities, *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(out, "Loaded %d cities in %v.\n\n", len(citiesList), time.Since(start).Round(time.Millisecond))

	if all || want["table1"] {
		experiments.PrintTable1(out, experiments.Table1(citiesList))
		fmt.Fprintln(out)
	}
	if all || want["table2"] {
		for _, c := range citiesList {
			res, err := experiments.Table2(c, 10)
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintTable2(out, res)
			fmt.Fprintln(out)
		}
	}
	if all || want["table3"] {
		rows, err := experiments.Table3(citiesList, 3)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintTable3(out, citiesList, rows)
		fmt.Fprintln(out)
	}
	if all || want["table4"] {
		experiments.PrintTable4(out, experiments.Table4(citiesList))
		fmt.Fprintln(out)
	}
	if all || want["fig4"] {
		for _, c := range citiesList {
			panels, err := experiments.Figure4(c, *trials)
			if err != nil {
				log.Fatal(err)
			}
			for _, p := range panels {
				experiments.PrintFigure4(out, p)
				fmt.Fprintln(out)
			}
		}
	}
	if all || want["fig5"] {
		curves, err := experiments.Figure5(citiesList, experiments.Figure6DefaultK)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintFigure5(out, curves)
		fmt.Fprintln(out)
	}
	if all || want["fig6"] {
		for _, c := range citiesList {
			panels, err := experiments.Figure6(c, *trials)
			if err != nil {
				log.Fatal(err)
			}
			for _, p := range panels {
				experiments.PrintFigure6(out, p)
				fmt.Fprintln(out)
			}
		}
	}
	if all || want["weighted"] {
		for _, c := range citiesList {
			res, err := experiments.WeightedTable2(c, 10)
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintWeightedTable2(out, res)
			fmt.Fprintln(out)
		}
	}
	if all || want["lcmsr"] {
		for _, c := range citiesList {
			res, err := experiments.LCMSRCompare(c, 10)
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintLCMSR(out, res)
			fmt.Fprintln(out)
		}
	}
	if all || want["ablation"] {
		for _, c := range citiesList {
			rows, err := experiments.AblationStrategy(c, *trials)
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintAblationStrategy(out, rows)
			fmt.Fprintln(out)
			agg, err := experiments.AblationAggregate(c, 10)
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintAblationAggregate(out, agg)
			fmt.Fprintln(out)
			cs, err := experiments.AblationCellSize(c, experiments.DefaultCellSizes, *trials)
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintAblationCellSize(out, cs)
			fmt.Fprintln(out)
		}
	}
	fmt.Fprintf(out, "Done in %v.\n", time.Since(start).Round(time.Millisecond))
}

// runParallel measures batch-executor throughput against the sequential
// loop on the default synthetic workload, per city.
func runParallel(cities string, scale float64, workers, queries int) error {
	out := os.Stdout
	start := time.Now()
	fmt.Fprintf(out, "Loading cities (scale %g)...\n", scale)
	citiesList, err := loadSelected(cities, scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Loaded %d cities in %v.\n\n", len(citiesList), time.Since(start).Round(time.Millisecond))
	for _, c := range citiesList {
		res, err := experiments.ParallelBench(c, workers, queries)
		if err != nil {
			return err
		}
		experiments.PrintParallelBench(out, res)
		fmt.Fprintln(out)
		if !res.Identical {
			return fmt.Errorf("parallel results diverged from sequential on %s", res.City)
		}
	}
	fmt.Fprintf(out, "Done in %v.\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func loadSelected(names string, scale float64) ([]*experiments.City, error) {
	allCities, err := experiments.LoadCitiesNamed(strings.Split(names, ","), scale)
	if err != nil {
		return nil, err
	}
	return allCities, nil
}
