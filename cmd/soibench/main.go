// Command soibench regenerates the tables and figures of the paper's
// evaluation section (Section 5) over the synthetic cities.
//
// Run everything at full dataset scale (the Table 1 sizes):
//
//	soibench -exp all
//
// Run one artifact at a reduced scale for a quick look:
//
//	soibench -exp fig4 -scale 0.1 -cities london
//
// Measure the parallel engine and capture its observability snapshot —
// pruning counters, cache traffic, latency quantiles — alongside
// throughput:
//
//	soibench -parallel 8 -queries 150 -stats
//	soibench -stats -queries 50 -statsout BENCH_stats.json
//
// The -stats text output is deterministic in layout (sorted keys, fixed
// float formatting), and -statsout writes the same snapshot as JSON for
// trend tracking.
//
// Benchmark the sharded scatter-gather coordinator against the single
// slab index (bit-identity verified before timing; see internal/shard),
// optionally with a multi-tenant interleaved workload:
//
//	soibench -json BENCH_2.json -shards 4 -queries 150
//	soibench -json BENCH_2.json -shards 4 -tenants 3 -scale 0.1
//
// Benchmark the cross-process scatter-gather path: the same workload
// gathered by the fault-tolerant remote client from shards behind real
// loopback HTTP servers (bit-identity and zero degradation verified
// before timing; the client's retry/hedge/breaker counters land in the
// artifact):
//
//	soibench -json BENCH_3.json -shards 4 -remote -queries 60 -scale 0.02
//
// Benchmark the epoch-based ingest path: the same read workload
// quiescent and then live, while a writer streams POIs and publishes an
// epoch per batch:
//
//	soibench -json BENCH_ingest.json -ingest -scale 0.1 -writes 2000 -write-batch 100
//
// Benchmark the trajectory query family — the k-most-interesting-routes
// search and the trajectory-aware SOI pipeline (bit-identity to the
// exhaustive oracle is enforced separately by soicheck -routes -traj):
//
//	soibench -json BENCH_routes.json -routes -queries 40 -scale 0.05
//	soibench -json BENCH_traj.json -traj -queries 40 -scale 0.05
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/stats"
)

var validExps = []string{"table1", "table2", "table3", "table4", "fig4", "fig5", "fig6", "ablation", "weighted", "lcmsr", "all"}

func main() {
	log.SetFlags(0)
	log.SetPrefix("soibench: ")
	var (
		exp      = flag.String("exp", "all", "experiment: "+strings.Join(validExps, ", "))
		scale    = flag.Float64("scale", 1.0, "dataset volume scale factor")
		trials   = flag.Int("trials", 3, "timing repetitions per measurement (median reported)")
		cities   = flag.String("cities", "london,berlin,vienna", "comma-separated subset of cities")
		parallel = flag.Int("parallel", 0, "run the parallel query throughput benchmark with N workers and exit")
		queries  = flag.Int("queries", 150, "workload size per city for -parallel and -stats")
		seed     = flag.Int64("seed", 1, "workload shuffle seed for -parallel/-stats runs, printed for reproducibility (0 keeps enumeration order)")
		withStat = flag.Bool("stats", false, "run the workload through an instrumented engine and print the observability snapshot")
		statsOut = flag.String("statsout", "", "write the -stats snapshot as JSON to this file (implies -stats)")
		timeout  = flag.Duration("timeout", 0, "overall wall-clock budget for a -parallel/-stats run; a run cut short exits non-zero")
		deadline = flag.Duration("deadline", 0, "per-query evaluation deadline for -parallel/-stats runs (0 = none)")
		jsonOut  = flag.String("json", "", "run the slab-vs-map layout benchmark and write a schema-validated BENCH artifact to this file, then exit")
		shards   = flag.Int("shards", 0, "with -json: benchmark the sharded scatter-gather coordinator at this shard count (≥ 2) against the single slab index")
		tenantsN = flag.Int("tenants", 1, "with -shards: interleave this many per-tenant seeded workloads round-robin (multi-tenant arrival order)")
		remoteB  = flag.Bool("remote", false, "with -json and -shards: benchmark the cross-process scatter-gather path (shards behind loopback HTTP servers, gathered by the fault-tolerant remote client) against the single slab index")
		ingestB  = flag.Bool("ingest", false, "with -json: run the mixed read/write ingest benchmark (quiescent vs live reads while a writer publishes epochs)")
		routesB  = flag.Bool("routes", false, "with -json: benchmark the k-most-interesting-routes search (internal/traj)")
		trajB    = flag.Bool("traj", false, "with -json: benchmark the trajectory-aware SOI pipeline (map-matching + corridor ranking)")
		writesN  = flag.Int("writes", 2000, "with -ingest: POIs the writer streams during the mixed pass")
		writeBat = flag.Int("write-batch", 100, "with -ingest: POIs appended per publish")
	)
	flag.Parse()

	if *shards != 0 || *tenantsN != 1 {
		switch {
		case *shards < 0:
			log.Fatalf("-shards must be non-negative, got %d", *shards)
		case *shards == 1:
			log.Fatalf("-shards needs at least 2 shards to compare against the single index, got 1")
		case *tenantsN < 1:
			log.Fatalf("-tenants needs at least one tenant workload, got %d", *tenantsN)
		case *shards == 0 && *tenantsN > 1:
			log.Fatalf("-tenants %d needs -shards: per-tenant workloads only exist for the sharded benchmark", *tenantsN)
		case *jsonOut == "":
			log.Fatalf("-shards requires -json OUT: the sharded benchmark only emits the BENCH artifact")
		case *parallel != 0 || *withStat || *statsOut != "":
			log.Fatalf("-shards is mutually exclusive with -parallel and -stats")
		}
	}

	if *remoteB {
		switch {
		case *jsonOut == "":
			log.Fatalf("-remote requires -json OUT: the remote benchmark only emits the BENCH artifact")
		case *shards < 2:
			log.Fatalf("-remote needs -shards ≥ 2 to partition the world, got %d", *shards)
		case *tenantsN != 1:
			log.Fatalf("-remote is mutually exclusive with -tenants")
		case *ingestB:
			log.Fatalf("-remote is mutually exclusive with -ingest")
		}
	}

	if *ingestB {
		switch {
		case *jsonOut == "":
			log.Fatalf("-ingest requires -json OUT: the ingest benchmark only emits the BENCH artifact")
		case *shards != 0 || *tenantsN != 1:
			log.Fatalf("-ingest is mutually exclusive with -shards and -tenants")
		case *parallel != 0 || *withStat || *statsOut != "":
			log.Fatalf("-ingest is mutually exclusive with -parallel and -stats")
		case *writesN <= 0 || *writeBat <= 0:
			log.Fatalf("-writes and -write-batch must be positive, got %d / %d", *writesN, *writeBat)
		}
	}

	if *routesB || *trajB {
		switch {
		case *jsonOut == "":
			log.Fatalf("-routes and -traj require -json OUT: the trajectory benchmarks only emit the BENCH artifact")
		case *routesB && *trajB:
			log.Fatalf("-routes and -traj are mutually exclusive: each writes its own artifact")
		case *shards != 0 || *tenantsN != 1 || *remoteB || *ingestB:
			log.Fatalf("-routes/-traj are mutually exclusive with -shards, -tenants, -remote and -ingest")
		case *parallel != 0 || *withStat || *statsOut != "":
			log.Fatalf("-routes/-traj are mutually exclusive with -parallel and -stats")
		}
	}

	if *jsonOut != "" {
		if *queries <= 0 {
			log.Fatalf("-json needs a positive -queries workload size, got %d", *queries)
		}
		if *routesB {
			if err := runRoutesBench(*cities, *scale, *queries, *seed, *jsonOut); err != nil {
				log.Fatal(err)
			}
			return
		}
		if *trajB {
			if err := runTrajBench(*cities, *scale, *queries, *seed, *jsonOut); err != nil {
				log.Fatal(err)
			}
			return
		}
		if *ingestB {
			if err := runIngestBench(*cities, *scale, *queries, *seed, *writesN, *writeBat, *jsonOut); err != nil {
				log.Fatal(err)
			}
			return
		}
		if *remoteB {
			if err := runRemoteBench(*cities, *scale, *queries, *seed, *shards, *jsonOut); err != nil {
				log.Fatal(err)
			}
			return
		}
		if *shards >= 2 {
			if err := runShardBench(*cities, *scale, *queries, *seed, *shards, *tenantsN, *jsonOut); err != nil {
				log.Fatal(err)
			}
			return
		}
		if err := runSlabBench(*cities, *scale, *queries, *seed, *jsonOut); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *parallel < 0 {
		log.Fatalf("-parallel needs a positive worker count, got %d", *parallel)
	}
	if *timeout < 0 || *deadline < 0 {
		log.Fatalf("-timeout and -deadline must be non-negative, got %v / %v", *timeout, *deadline)
	}
	if *statsOut != "" {
		*withStat = true
	}
	if *parallel > 0 || *withStat {
		if *queries <= 0 {
			log.Fatalf("-parallel and -stats need a positive -queries workload size, got %d", *queries)
		}
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		if err := runParallel(ctx, *cities, *scale, *parallel, *queries, *seed, *withStat, *statsOut, *deadline); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				log.Fatalf("run cut short by -timeout %v: %v", *timeout, err)
			}
			log.Fatal(err)
		}
		return
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		e = strings.TrimSpace(strings.ToLower(e))
		ok := false
		for _, v := range validExps {
			if e == v {
				ok = true
			}
		}
		if !ok {
			log.Fatalf("unknown experiment %q (want one of %s)", e, strings.Join(validExps, ", "))
		}
		want[e] = true
	}
	all := want["all"]
	out := os.Stdout

	start := time.Now()
	fmt.Fprintf(out, "Loading cities (scale %g)...\n", *scale)
	citiesList, err := loadSelected(*cities, *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(out, "Loaded %d cities in %v.\n\n", len(citiesList), time.Since(start).Round(time.Millisecond))

	if all || want["table1"] {
		experiments.PrintTable1(out, experiments.Table1(citiesList))
		fmt.Fprintln(out)
	}
	if all || want["table2"] {
		for _, c := range citiesList {
			res, err := experiments.Table2(c, 10)
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintTable2(out, res)
			fmt.Fprintln(out)
		}
	}
	if all || want["table3"] {
		rows, err := experiments.Table3(citiesList, 3)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintTable3(out, citiesList, rows)
		fmt.Fprintln(out)
	}
	if all || want["table4"] {
		experiments.PrintTable4(out, experiments.Table4(citiesList))
		fmt.Fprintln(out)
	}
	if all || want["fig4"] {
		for _, c := range citiesList {
			panels, err := experiments.Figure4(c, *trials)
			if err != nil {
				log.Fatal(err)
			}
			for _, p := range panels {
				experiments.PrintFigure4(out, p)
				fmt.Fprintln(out)
			}
		}
	}
	if all || want["fig5"] {
		curves, err := experiments.Figure5(citiesList, experiments.Figure6DefaultK)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintFigure5(out, curves)
		fmt.Fprintln(out)
	}
	if all || want["fig6"] {
		for _, c := range citiesList {
			panels, err := experiments.Figure6(c, *trials)
			if err != nil {
				log.Fatal(err)
			}
			for _, p := range panels {
				experiments.PrintFigure6(out, p)
				fmt.Fprintln(out)
			}
		}
	}
	if all || want["weighted"] {
		for _, c := range citiesList {
			res, err := experiments.WeightedTable2(c, 10)
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintWeightedTable2(out, res)
			fmt.Fprintln(out)
		}
	}
	if all || want["lcmsr"] {
		for _, c := range citiesList {
			res, err := experiments.LCMSRCompare(c, 10)
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintLCMSR(out, res)
			fmt.Fprintln(out)
		}
	}
	if all || want["ablation"] {
		for _, c := range citiesList {
			rows, err := experiments.AblationStrategy(c, *trials)
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintAblationStrategy(out, rows)
			fmt.Fprintln(out)
			agg, err := experiments.AblationAggregate(c, 10)
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintAblationAggregate(out, agg)
			fmt.Fprintln(out)
			cs, err := experiments.AblationCellSize(c, experiments.DefaultCellSizes, *trials)
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintAblationCellSize(out, cs)
			fmt.Fprintln(out)
		}
	}
	fmt.Fprintf(out, "Done in %v.\n", time.Since(start).Round(time.Millisecond))
}

// runParallel measures the parallel engine on the default synthetic
// workload, per city. With workers > 0 it benchmarks batch-executor
// throughput against the sequential loop; with withStats it attaches an
// observability recorder and prints each city's snapshot (sorted keys,
// fixed float formatting, so the layout is golden-file stable). A
// non-empty statsOut additionally writes every snapshot as one JSON
// document for trend tracking across runs. The context bounds the whole
// run (-timeout) and deadline bounds each query (-deadline); either cut
// surfaces as a context error and a non-zero exit.
func runParallel(ctx context.Context, cities string, scale float64, workers, queries int, seed int64, withStats bool, statsOut string, deadline time.Duration) error {
	out := os.Stdout
	start := time.Now()
	fmt.Fprintf(out, "Loading cities (scale %g)...\n", scale)
	citiesList, err := loadSelected(cities, scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Loaded %d cities in %v.\n", len(citiesList), time.Since(start).Round(time.Millisecond))
	// The workload RNG is seeded explicitly and the seed always printed,
	// so any run — including one with a hand-picked seed — can be
	// reproduced exactly from its own output.
	fmt.Fprintf(out, "Workload seed %d (rerun with -seed %d to reproduce).\n\n", seed, seed)
	artifact := statsArtifact{Scale: scale, Workers: workers, Queries: queries, Seed: seed, Cities: map[string]stats.Snapshot{}}
	for _, c := range citiesList {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("before %s: %w", c.Name(), err)
		}
		var rec *stats.Recorder
		if withStats {
			rec = stats.NewRecorder()
		}
		if workers > 0 {
			res, err := experiments.ParallelBenchSeeded(ctx, c, workers, queries, seed, rec, deadline)
			if err != nil {
				return err
			}
			experiments.PrintParallelBench(out, res)
			fmt.Fprintln(out)
			if !res.Identical {
				return fmt.Errorf("parallel results diverged from sequential on %s", res.City)
			}
		} else {
			// Stats-only run: evaluate the workload once through an
			// instrumented executor, without the sequential baseline.
			exec := engine.New(c.Index, engine.Config{CacheSize: -1, Recorder: rec, QueryTimeout: deadline})
			for i, r := range exec.BatchCtx(ctx, experiments.ParallelWorkloadSeeded(queries, seed)) {
				if r.Err != nil {
					return fmt.Errorf("stats query %d on %s: %w", i, c.Name(), r.Err)
				}
			}
		}
		if withStats {
			snap := rec.Snapshot()
			artifact.Cities[c.Name()] = snap
			fmt.Fprintf(out, "Engine stats snapshot — %s (%d queries)\n", c.Name(), queries)
			if err := snap.WriteText(out); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
	}
	if statsOut != "" {
		if err := writeStatsArtifact(statsOut, artifact); err != nil {
			return err
		}
		fmt.Fprintf(out, "Wrote stats snapshot to %s.\n", statsOut)
	}
	fmt.Fprintf(out, "Done in %v.\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// statsArtifact is the -statsout JSON document: one observability
// snapshot per city plus the workload parameters that produced it.
type statsArtifact struct {
	Scale   float64                   `json:"scale"`
	Workers int                       `json:"workers"`
	Queries int                       `json:"queries"`
	Seed    int64                     `json:"seed"`
	Cities  map[string]stats.Snapshot `json:"cities"`
}

func writeStatsArtifact(path string, a statsArtifact) error {
	buf, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func loadSelected(names string, scale float64) ([]*experiments.City, error) {
	allCities, err := experiments.LoadCitiesNamed(strings.Split(names, ","), scale)
	if err != nil {
		return nil, err
	}
	return allCities, nil
}
