package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/shard"
)

// runShardBench measures the identical query workload on a single slab
// index and on the sharded scatter-gather coordinator, per city, and
// writes the comparison as a schema-validated BENCH artifact. Before any
// timing it verifies the two paths agree bit-for-bit on every query —
// ranked street ids, Float64bits interests, best segments — so the
// artifact can only ever compare equivalent answers. The same
// verification pass collects the coordinator's deterministic
// early-termination counters (shards pruned without evaluation), which
// land in the artifact next to the throughput numbers.
//
// With tenants > 1 the workload models a multi-tenant arrival order:
// each tenant draws its own seeded workload (seed, seed+1, …) and the
// streams are interleaved round-robin, so the measured loop hops between
// query mixes the way a shared server does.
func runShardBench(cities string, scale float64, queries int, seed int64, shards, tenants int, outPath string) error {
	out := os.Stdout
	start := time.Now()
	fmt.Fprintf(out, "Loading cities (scale %g)...\n", scale)
	citiesList, err := loadSelected(cities, scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Loaded %d cities in %v.\n", len(citiesList), time.Since(start).Round(time.Millisecond))

	workload := shardWorkload(queries, seed, tenants)
	halo := 0.0
	for _, q := range workload {
		halo = math.Max(halo, q.Epsilon)
	}
	fmt.Fprintf(out, "Workload: %d queries (%d tenants × %d), seed %d, %d shards, halo %g.\n\n",
		len(workload), tenants, queries, seed, shards, halo)

	report := benchfmt.Report{
		SchemaVersion: benchfmt.SchemaVersion,
		Bench:         "sharded-scatter-gather",
		GoVersion:     runtime.Version(),
		Scale:         scale,
		Seed:          seed,
		Queries:       len(workload),
		Shards:        shards,
		Tenants:       tenants,
	}
	ctx := context.Background()
	for _, c := range citiesList {
		net, pois := c.Dataset.Network, c.Dataset.POIs
		single, err := core.NewSlabIndex(net, pois, core.IndexConfig{CellSize: experiments.Epsilon})
		if err != nil {
			return fmt.Errorf("building single index for %s: %w", c.Name(), err)
		}
		world, err := shard.Partition(net, pois, shard.Config{
			Tiles:    shards,
			Halo:     halo,
			CellSize: experiments.Epsilon,
		})
		if err != nil {
			return fmt.Errorf("partitioning %s into %d shards: %w", c.Name(), shards, err)
		}
		coord := shard.NewCoordinator(world)
		eps := map[float64]bool{}
		for _, q := range workload {
			if !eps[q.Epsilon] {
				single.Warm(q.Epsilon)
				for _, s := range world.Shards {
					s.Index.Warm(q.Epsilon)
				}
				eps[q.Epsilon] = true
			}
		}

		// Equivalence gate + deterministic counters in one pass.
		var total shard.GatherStats
		for qi, q := range workload {
			want, _, err := single.SOI(q)
			if err != nil {
				return fmt.Errorf("single index on %s query %d: %w", c.Name(), qi, err)
			}
			got, gs, err := coord.TopK(ctx, q)
			if err != nil {
				return fmt.Errorf("coordinator on %s query %d: %w", c.Name(), qi, err)
			}
			if d := diffShardResults(got, want); d != "" {
				return fmt.Errorf("sharded answer diverged from single index on %s query %d: %s", c.Name(), qi, d)
			}
			total.ShardsTotal += gs.ShardsTotal
			total.ShardsEvaluated += gs.ShardsEvaluated
			total.ShardsPruned += gs.ShardsPruned
		}

		results := make([]core.StreetResult, 0, 64)
		singleMetrics, err := measure(len(workload), func() error {
			for _, q := range workload {
				var err error
				if results, _, err = single.SOIInto(ctx, q, nil, results[:0]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("single layout on %s: %w", c.Name(), err)
		}
		shardedMetrics, err := measure(len(workload), func() error {
			for _, q := range workload {
				if _, _, err := coord.TopK(ctx, q); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("sharded layout on %s: %w", c.Name(), err)
		}

		st := net.Stats()
		w := benchfmt.World{
			Name:            c.Name(),
			Streets:         st.NumStreets,
			Segments:        st.NumSegments,
			POIs:            pois.Len(),
			Single:          &singleMetrics,
			Sharded:         &shardedMetrics,
			ShardsTotal:     total.ShardsTotal,
			ShardsEvaluated: total.ShardsEvaluated,
			ShardsPruned:    total.ShardsPruned,
		}
		if shardedMetrics.NsPerQuery > 0 {
			w.Speedup = singleMetrics.NsPerQuery / shardedMetrics.NsPerQuery
		}
		if shardedMetrics.AllocsPerQuery > 0 {
			w.AllocReduction = singleMetrics.AllocsPerQuery / shardedMetrics.AllocsPerQuery
		} else {
			w.AllocReduction = singleMetrics.AllocsPerQuery
		}
		report.Worlds = append(report.Worlds, w)
		fmt.Fprintf(out, "%-12s single %9.0f ns/q | sharded %9.0f ns/q (%d shards: %d evaluated, %d pruned) | %5.2fx\n",
			c.Name(), singleMetrics.NsPerQuery, shardedMetrics.NsPerQuery,
			total.ShardsTotal, total.ShardsEvaluated, total.ShardsPruned, w.Speedup)
	}

	if err := report.WriteFile(outPath); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nWrote %s (schema v%d). Done in %v.\n", outPath, benchfmt.SchemaVersion, time.Since(start).Round(time.Millisecond))
	return nil
}

// shardWorkload interleaves one seeded workload per tenant round-robin.
// With tenants == 1 it is exactly ParallelWorkloadSeeded(queries, seed),
// so single-tenant sharded runs stay comparable with the other benches.
func shardWorkload(queries int, seed int64, tenants int) []core.Query {
	perTenant := make([][]core.Query, tenants)
	for t := range perTenant {
		perTenant[t] = experiments.ParallelWorkloadSeeded(queries, seed+int64(t))
	}
	workload := make([]core.Query, 0, queries*tenants)
	for i := 0; i < queries; i++ {
		for t := 0; t < tenants; t++ {
			workload = append(workload, perTenant[t][i])
		}
	}
	return workload
}

// diffShardResults reports the first bit-level divergence between two
// rankings, or "" when they are identical.
func diffShardResults(got, want []core.StreetResult) string {
	if len(got) != len(want) {
		return fmt.Sprintf("%d results, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Street != w.Street || g.BestSegment != w.BestSegment ||
			math.Float64bits(g.Interest) != math.Float64bits(w.Interest) ||
			math.Float64bits(g.Mass) != math.Float64bits(w.Mass) {
			return fmt.Sprintf("rank %d: street %d interest %x mass %x, want street %d interest %x mass %x",
				i, g.Street, math.Float64bits(g.Interest), math.Float64bits(g.Mass),
				w.Street, math.Float64bits(w.Interest), math.Float64bits(w.Mass))
		}
	}
	return ""
}
