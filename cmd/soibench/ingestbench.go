package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	soi "repro"
	"repro/internal/benchfmt"
	"repro/internal/experiments"
	"repro/internal/poi"
)

// runIngestBench measures the read workload on a live engine twice per
// city — once quiescent (no writer, the Single baseline) and once while
// a writer streams POIs through the epoch-based ingest path, publishing
// a new epoch per batch (the Live pass) — and writes both, plus the
// write-side ingest counters, as a schema-validated BENCH artifact. The
// speedup ratio is quiescent over live read latency: how much the read
// path pays for concurrent epoch churn.
func runIngestBench(cities string, scale float64, queries int, seed int64, writes, batch int, outPath string) error {
	out := os.Stdout
	start := time.Now()
	fmt.Fprintf(out, "Loading cities (scale %g)...\n", scale)
	citiesList, err := loadSelected(cities, scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Loaded %d cities in %v.\n", len(citiesList), time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(out, "Workload: %d queries, %d writes in batches of %d, seed %d.\n\n", queries, writes, batch, seed)

	report := benchfmt.Report{
		SchemaVersion: benchfmt.SchemaVersion,
		Bench:         "ingest-mixed",
		GoVersion:     runtime.Version(),
		Scale:         scale,
		Seed:          seed,
		Queries:       queries,
	}
	workload := experiments.ParallelWorkloadSeeded(queries, seed)
	qs := make([]soi.Query, len(workload))
	for i, q := range workload {
		qs[i] = soi.Query{Keywords: q.Keywords, K: q.K, Epsilon: q.Epsilon}
	}
	for _, c := range citiesList {
		eng, err := soi.NewLiveEngineFromCorpora(c.Dataset.Network, c.Dataset.POIs, c.Dataset.Photos, soi.LiveConfig{
			Config: soi.Config{CacheSize: -1}, // caching would hide the evaluation cost
		})
		if err != nil {
			return fmt.Errorf("building live engine for %s: %w", c.Name(), err)
		}
		eng.Warm(experiments.Epsilon)

		readPass := func() error {
			for _, q := range qs {
				if _, err := eng.TopStreets(q); err != nil {
					return err
				}
			}
			return nil
		}
		quiescent, err := measure(queries, readPass)
		if err != nil {
			eng.Close()
			return fmt.Errorf("quiescent reads on %s: %w", c.Name(), err)
		}

		// Mixed pass: the writer streams deltas sampled from the city's
		// own corpus (deterministic, always in bounds) and publishes an
		// epoch per batch, while the timed read pass runs.
		writerErr := make(chan error, 1)
		mixedStart := time.Now()
		go func() {
			corpus := c.Dataset.POIs
			dict := corpus.Dict()
			for done := 0; done < writes; {
				n := batch
				if writes-done < n {
					n = writes - done
				}
				in := make([]soi.POIInput, n)
				for i := 0; i < n; i++ {
					p := corpus.Get(poi.ID((done + i) % corpus.Len()))
					in[i] = soi.POIInput{X: p.Loc.X, Y: p.Loc.Y, Keywords: dict.Names(p.Keywords), Weight: p.Weight}
				}
				if _, err := eng.AddPOIs(in); err != nil {
					writerErr <- err
					return
				}
				if _, _, err := eng.Publish(); err != nil {
					writerErr <- err
					return
				}
				done += n
			}
			writerErr <- nil
		}()
		live, err := measure(queries, readPass)
		if werr := <-writerErr; err == nil {
			err = werr
		}
		if err != nil {
			eng.Close()
			return fmt.Errorf("mixed pass on %s: %w", c.Name(), err)
		}
		mixedElapsed := time.Since(mixedStart)

		ist := eng.StatsSnapshot().Ingest
		ib := benchfmt.IngestBench{
			Writes:      int(ist.DeltasAppended),
			Publishes:   int(ist.Publishes),
			Compactions: int(ist.Compactions),
			FinalEpoch:  int(ist.EpochSeq),
		}
		if mixedElapsed > 0 {
			ib.WriteQPS = float64(ib.Writes) / mixedElapsed.Seconds()
		}
		if ist.Publishes > 0 {
			ib.PublishMsMean = float64(ist.PublishNanos) / float64(ist.Publishes) / 1e6
		}
		st := c.Dataset.Network.Stats()
		w := benchfmt.World{
			Name:     c.Name(),
			Streets:  st.NumStreets,
			Segments: st.NumSegments,
			POIs:     c.Dataset.POIs.Len(),
			Single:   &quiescent,
			Live:     &live,
			Ingest:   &ib,
		}
		if live.NsPerQuery > 0 {
			w.Speedup = quiescent.NsPerQuery / live.NsPerQuery
		}
		if live.AllocsPerQuery > 0 {
			w.AllocReduction = quiescent.AllocsPerQuery / live.AllocsPerQuery
		} else {
			w.AllocReduction = quiescent.AllocsPerQuery
		}
		report.Worlds = append(report.Worlds, w)
		fmt.Fprintf(out, "%-12s quiescent %9.0f ns/q | live %9.0f ns/q (%.2fx) | %d writes, %d publishes, %.1f ms/publish, epoch %d\n",
			c.Name(), quiescent.NsPerQuery, live.NsPerQuery, w.Speedup,
			ib.Writes, ib.Publishes, ib.PublishMsMean, ib.FinalEpoch)
		if err := eng.Close(); err != nil {
			return fmt.Errorf("closing live engine for %s: %w", c.Name(), err)
		}
	}

	if err := report.WriteFile(outPath); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nWrote %s (schema v%d). Done in %v.\n", outPath, benchfmt.SchemaVersion, time.Since(start).Round(time.Millisecond))
	return nil
}
