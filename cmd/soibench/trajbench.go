package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/network"
	"repro/internal/traj"
	"repro/internal/vocab"
)

// This file benchmarks the trajectory query family (internal/traj): the
// k-most-interesting-routes search and the trajectory-aware SOI
// pipeline (map-matching + corridor ranking). Both workloads reuse the
// seeded keyword workload of the other benchmarks, derive their spatial
// parameters (endpoints, budgets, traces) deterministically from the
// same seed, and emit the standard schema-v3 BENCH artifact with the
// measurement in World.Single. There is no baseline pair for these
// workloads, so the ratio fields are fixed at 1.

// routeWork is one derived route query of the routes workload.
type routeWork struct {
	set vocab.Set
	eps float64
	q   traj.RouteQuery
}

// runRoutesBench measures the k-most-interesting-routes search per city
// and writes the BENCH artifact.
func runRoutesBench(cities string, scale float64, queries int, seed int64, outPath string) error {
	out := os.Stdout
	start := time.Now()
	fmt.Fprintf(out, "Loading cities (scale %g)...\n", scale)
	citiesList, err := loadSelected(cities, scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Loaded %d cities in %v.\n", len(citiesList), time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(out, "Workload: %d route queries, seed %d.\n\n", queries, seed)

	report := benchfmt.Report{
		SchemaVersion: benchfmt.SchemaVersion,
		Bench:         "routes",
		GoVersion:     runtime.Version(),
		Scale:         scale,
		Seed:          seed,
		Queries:       queries,
	}
	ctx := context.Background()
	kwWork := experiments.ParallelWorkloadSeeded(queries, seed)
	for _, c := range citiesList {
		net := c.Dataset.Network
		g := traj.NewGraph(net, traj.DefaultSnap(net))
		work, err := deriveRouteWork(c, g, kwWork, seed)
		if err != nil {
			return fmt.Errorf("deriving route workload for %s: %w", c.Name(), err)
		}
		var expansions int64
		metrics, err := measure(len(work), func() error {
			expansions = 0
			for _, rw := range work {
				_, st, err := traj.TopKRoutes(ctx, g, func(sid network.SegmentID) float64 {
					return c.Index.SegmentInterest(sid, rw.set, rw.eps)
				}, rw.q, traj.SearchOptions{})
				if err != nil {
					return err
				}
				expansions += int64(st.Expansions)
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("routes on %s: %w", c.Name(), err)
		}
		report.Worlds = append(report.Worlds, trajWorld(c, metrics))
		fmt.Fprintf(out, "%-12s routes %9.0f ns/q %7.1f allocs/q %8.1f qps (%d queries, %.0f expansions/q)\n",
			c.Name(), metrics.NsPerQuery, metrics.AllocsPerQuery, metrics.QPS,
			len(work), float64(expansions)/float64(len(work)))
	}

	if err := report.WriteFile(outPath); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nWrote %s (schema v%d). Done in %v.\n", outPath, benchfmt.SchemaVersion, time.Since(start).Round(time.Millisecond))
	return nil
}

// deriveRouteWork turns the seeded keyword workload into route queries:
// per query a source vertex is hashed from the seed, the destination is
// the reachable vertex nearest to four mean segment lengths away, and
// the budget leaves the search 20% slack over the shortest path. The
// derivation is deterministic, so two runs with one seed time the same
// searches.
func deriveRouteWork(c *experiments.City, g *traj.Graph, kwWork []core.Query, seed int64) ([]routeWork, error) {
	net := c.Dataset.Network
	nv := g.NumVertices()
	if nv < 2 {
		return nil, fmt.Errorf("network has %d vertices", nv)
	}
	st := net.Stats()
	meanLen := st.TotalLen / float64(st.NumSegments)
	band := 4 * meanLen
	h := seed
	if h < 0 {
		h = -h
	}
	work := make([]routeWork, 0, len(kwWork))
	for i, kq := range kwWork {
		src := network.VertexID((uint64(h)*2654435761 + uint64(i)*97) % uint64(nv))
		dists := g.Distances(src)
		// Destination: the reachable vertex whose shortest-path distance
		// is largest while staying within the band — far enough to make
		// the search non-trivial, near enough to bound the path space.
		best, bestD := network.VertexID(0), -1.0
		for v, d := range dists {
			if network.VertexID(v) == src || d > band || d < 0 {
				continue
			}
			if d > bestD || (d == bestD && network.VertexID(v) < best) {
				best, bestD = network.VertexID(v), d
			}
		}
		if bestD <= 0 {
			continue // isolated source; skip deterministically
		}
		set, _ := c.Dataset.POIs.Dict().LookupAll(kq.Keywords)
		work = append(work, routeWork{
			set: set,
			eps: kq.Epsilon,
			q: traj.RouteQuery{
				Src: src, Dst: best,
				K:      3,
				Budget: 1.2 * bestD,
				Alpha:  0,
			},
		})
	}
	if len(work) == 0 {
		return nil, fmt.Errorf("no reachable source/destination pairs")
	}
	return work, nil
}

// runTrajBench measures the trajectory-aware SOI pipeline per city: a
// fixed set of synthetic traces is map-matched and corridor-ranked once
// per keyword query.
func runTrajBench(cities string, scale float64, queries int, seed int64, outPath string) error {
	out := os.Stdout
	start := time.Now()
	fmt.Fprintf(out, "Loading cities (scale %g)...\n", scale)
	citiesList, err := loadSelected(cities, scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Loaded %d cities in %v.\n", len(citiesList), time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(out, "Workload: %d trajectory queries, seed %d.\n\n", queries, seed)

	const tracesPerQuery = 8
	report := benchfmt.Report{
		SchemaVersion: benchfmt.SchemaVersion,
		Bench:         "traj",
		GoVersion:     runtime.Version(),
		Scale:         scale,
		Seed:          seed,
		Queries:       queries,
	}
	ctx := context.Background()
	kwWork := experiments.ParallelWorkloadSeeded(queries, seed)
	for _, c := range citiesList {
		net := c.Dataset.Network
		traces := datagen.Traces(net, seed, tracesPerQuery)
		radius := traj.DefaultSnap(net)
		m := traj.NewMatcher(net, radius)
		var matched int64
		metrics, err := measure(len(kwWork), func() error {
			matched = 0
			for _, kq := range kwWork {
				set, _ := c.Dataset.POIs.Dict().LookupAll(kq.Keywords)
				eps := kq.Epsilon
				_, st, err := traj.TrajectorySOI(ctx, m, func(sid network.SegmentID) float64 {
					return c.Index.SegmentInterest(sid, set, eps)
				}, traj.TrajQuery{Traces: traces, K: 10, Radius: radius})
				if err != nil {
					return err
				}
				matched += int64(st.Matched)
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("traj on %s: %w", c.Name(), err)
		}
		report.Worlds = append(report.Worlds, trajWorld(c, metrics))
		fmt.Fprintf(out, "%-12s traj   %9.0f ns/q %7.1f allocs/q %8.1f qps (%d traces/q, %.0f matched pts/q)\n",
			c.Name(), metrics.NsPerQuery, metrics.AllocsPerQuery, metrics.QPS,
			tracesPerQuery, float64(matched)/float64(len(kwWork)))
	}

	if err := report.WriteFile(outPath); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nWrote %s (schema v%d). Done in %v.\n", outPath, benchfmt.SchemaVersion, time.Since(start).Round(time.Millisecond))
	return nil
}

// trajWorld wraps one measurement as a World with the single-sided
// ratio convention (no baseline pair → both ratios 1).
func trajWorld(c *experiments.City, m benchfmt.Metrics) benchfmt.World {
	st := c.Dataset.Network.Stats()
	return benchfmt.World{
		Name:           c.Name(),
		Streets:        st.NumStreets,
		Segments:       st.NumSegments,
		POIs:           c.Dataset.POIs.Len(),
		Single:         &m,
		Speedup:        1,
		AllocReduction: 1,
	}
}
