package main

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/remote"
	"repro/internal/shard"
	"repro/internal/stats"
)

// runRemoteBench measures the identical query workload on a single slab
// index and on the cross-process scatter-gather path: every shard of the
// partition served by a loopback HTTP server, gathered through the
// fault-tolerant remote client. Before timing it verifies the remote
// answers are bit-identical to the single index and that no gather
// degraded — loopback is healthy, so any retry or partial answer means
// the harness itself is broken and the artifact must not be written.
// The client's fault-tolerance counters over the measured workload land
// in the artifact next to the throughput numbers: a clean run documents
// attempts == calls, making any environmental noise visible in trend
// tracking.
func runRemoteBench(cities string, scale float64, queries int, seed int64, shards int, outPath string) error {
	out := os.Stdout
	start := time.Now()
	fmt.Fprintf(out, "Loading cities (scale %g)...\n", scale)
	citiesList, err := loadSelected(cities, scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Loaded %d cities in %v.\n", len(citiesList), time.Since(start).Round(time.Millisecond))

	workload := shardWorkload(queries, seed, 1)
	halo := 0.0
	for _, q := range workload {
		halo = math.Max(halo, q.Epsilon)
	}
	fmt.Fprintf(out, "Workload: %d queries, seed %d, %d shards over loopback HTTP, halo %g.\n\n",
		len(workload), seed, shards, halo)

	report := benchfmt.Report{
		SchemaVersion: benchfmt.SchemaVersion,
		Bench:         "remote-scatter-gather",
		GoVersion:     runtime.Version(),
		Scale:         scale,
		Seed:          seed,
		Queries:       len(workload),
		Shards:        shards,
	}
	ctx := context.Background()
	for _, c := range citiesList {
		w, err := benchRemoteCity(ctx, c, workload, shards, halo)
		if err != nil {
			return err
		}
		report.Worlds = append(report.Worlds, *w)
		fmt.Fprintf(out, "%-12s single %9.0f ns/q | remote %9.0f ns/q (%d calls, %d attempts, %d retries) | %5.3fx\n",
			c.Name(), w.Single.NsPerQuery, w.Remote.NsPerQuery,
			w.RemoteNet.Calls, w.RemoteNet.Attempts, w.RemoteNet.Retries, w.Speedup)
	}

	if err := report.WriteFile(outPath); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nWrote %s (schema v%d). Done in %v.\n", outPath, benchfmt.SchemaVersion, time.Since(start).Round(time.Millisecond))
	return nil
}

// benchRemoteCity runs the equivalence gate and both timed passes for one
// city, bringing the shard servers up and down around them.
func benchRemoteCity(ctx context.Context, c *experiments.City, workload []core.Query, shards int, halo float64) (*benchfmt.World, error) {
	net, pois := c.Dataset.Network, c.Dataset.POIs
	single, err := core.NewSlabIndex(net, pois, core.IndexConfig{CellSize: experiments.Epsilon})
	if err != nil {
		return nil, fmt.Errorf("building single index for %s: %w", c.Name(), err)
	}
	world, err := shard.Partition(net, pois, shard.Config{
		Tiles:    shards,
		Halo:     halo,
		CellSize: experiments.Epsilon,
	})
	if err != nil {
		return nil, fmt.Errorf("partitioning %s into %d shards: %w", c.Name(), shards, err)
	}
	servers := make([]*httptest.Server, len(world.Shards))
	addrs := make([][]string, len(world.Shards))
	for i, s := range world.Shards {
		hs := httptest.NewServer(remote.NewServer(remote.ShardData{
			ShardID:  s.ID,
			Shards:   len(world.Shards),
			TileX:    s.TileX,
			TileY:    s.TileY,
			Halo:     world.Halo,
			CellSize: world.CellSize,
			Index:    s.Index,
			Streets:  s.Streets,
			Segments: s.Segments,
		}, remote.ServerConfig{}))
		defer hs.Close()
		servers[i] = hs
		addrs[i] = []string{hs.URL}
	}
	rec := stats.NewRecorder()
	client, err := remote.NewClient(remote.Config{
		Addrs:    addrs,
		Recorder: rec,
	})
	if err != nil {
		return nil, fmt.Errorf("remote client for %s: %w", c.Name(), err)
	}
	defer client.Close()
	coord := shard.NewRemoteCoordinator(client, world.Halo)

	eps := map[float64]bool{}
	for _, q := range workload {
		if !eps[q.Epsilon] {
			single.Warm(q.Epsilon)
			for _, s := range world.Shards {
				s.Index.Warm(q.Epsilon)
			}
			eps[q.Epsilon] = true
		}
	}

	// Equivalence gate: the remote path must be bit-identical to the
	// single index and never degrade before any timing starts.
	var total shard.GatherStats
	for qi, q := range workload {
		want, _, err := single.SOI(q)
		if err != nil {
			return nil, fmt.Errorf("single index on %s query %d: %w", c.Name(), qi, err)
		}
		got, gs, err := coord.TopK(ctx, q, false)
		if err != nil {
			return nil, fmt.Errorf("remote coordinator on %s query %d: %w", c.Name(), qi, err)
		}
		if gs.Degraded {
			return nil, fmt.Errorf("remote gather degraded over healthy loopback shards on %s query %d (missing %v)", c.Name(), qi, gs.MissingShards)
		}
		if d := diffShardResults(got, want); d != "" {
			return nil, fmt.Errorf("remote answer diverged from single index on %s query %d: %s", c.Name(), qi, d)
		}
		total.ShardsTotal += gs.ShardsTotal
		total.ShardsEvaluated += gs.ShardsEvaluated
		total.ShardsPruned += gs.ShardsPruned
	}

	results := make([]core.StreetResult, 0, 64)
	singleMetrics, err := measure(len(workload), func() error {
		for _, q := range workload {
			var err error
			if results, _, err = single.SOIInto(ctx, q, nil, results[:0]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("single layout on %s: %w", c.Name(), err)
	}
	// Snapshot the counters around the timed remote pass only, so the
	// artifact's network block describes exactly the measured workload.
	before := rec.Snapshot().Remote
	remoteMetrics, err := measure(len(workload), func() error {
		for _, q := range workload {
			if _, gs, err := coord.TopK(ctx, q, false); err != nil {
				return err
			} else if gs.Degraded {
				return fmt.Errorf("degraded gather during timing (missing %v)", gs.MissingShards)
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("remote layout on %s: %w", c.Name(), err)
	}
	after := rec.Snapshot().Remote

	st := net.Stats()
	w := benchfmt.World{
		Name:     c.Name(),
		Streets:  st.NumStreets,
		Segments: st.NumSegments,
		POIs:     pois.Len(),
		Single:   &singleMetrics,
		Remote:   &remoteMetrics,
		RemoteNet: &benchfmt.RemoteNetBench{
			Calls:         after.Calls - before.Calls,
			Attempts:      after.Attempts - before.Attempts,
			Retries:       after.Retries - before.Retries,
			HedgesStarted: after.HedgesStarted - before.HedgesStarted,
			BreakerOpens:  after.BreakerOpens - before.BreakerOpens,
			Errors:        after.Errors - before.Errors,
			Degraded:      after.Degraded - before.Degraded,
		},
		ShardsTotal:     total.ShardsTotal,
		ShardsEvaluated: total.ShardsEvaluated,
		ShardsPruned:    total.ShardsPruned,
	}
	if remoteMetrics.NsPerQuery > 0 {
		w.Speedup = singleMetrics.NsPerQuery / remoteMetrics.NsPerQuery
	}
	if remoteMetrics.AllocsPerQuery > 0 {
		w.AllocReduction = singleMetrics.AllocsPerQuery / remoteMetrics.AllocsPerQuery
	} else {
		w.AllocReduction = singleMetrics.AllocsPerQuery
	}
	return &w, nil
}
