package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
)

// TestIngestFlagValidation: invalid -ingest combinations must exit
// non-zero with a diagnosis before any dataset is generated.
func TestIngestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"ingest without json", []string{"-ingest"}, "requires -json"},
		{"ingest with shards", []string{"-ingest", "-json", "x.json", "-shards", "4"}, "mutually exclusive"},
		{"ingest with stats", []string{"-ingest", "-json", "x.json", "-stats"}, "mutually exclusive"},
		{"zero writes", []string{"-ingest", "-json", "x.json", "-writes", "0"}, "must be positive"},
		{"zero batch", []string{"-ingest", "-json", "x.json", "-write-batch", "0"}, "must be positive"},
	}
	for _, c := range cases {
		_, stderr, exit := runCLI(t, c.args...)
		if exit == 0 {
			t.Errorf("%s: accepted (args %v)", c.name, c.args)
			continue
		}
		if !strings.Contains(stderr, c.want) {
			t.Errorf("%s: stderr %q missing %q", c.name, stderr, c.want)
		}
	}
}

// TestIngestBenchArtifact runs the mixed read/write benchmark end to end
// on a tiny workload and decodes the artifact through the schema
// validator: live metrics and the ingest block present, write accounting
// consistent with the requested workload.
func TestIngestBenchArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a city and runs the mixed workload")
	}
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	stdout, stderr, exit := runCLI(t,
		"-json", out, "-ingest", "-queries", "6", "-scale", "0.02",
		"-cities", "vienna", "-writes", "40", "-write-batch", "20")
	if exit != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", exit, stdout, stderr)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	r, err := benchfmt.Decode(data)
	if err != nil {
		t.Fatalf("artifact fails its own schema: %v", err)
	}
	if r.Bench != "ingest-mixed" || len(r.Worlds) != 1 {
		t.Fatalf("unexpected artifact: %+v", r)
	}
	w := r.Worlds[0]
	if w.Single == nil || w.Live == nil || w.Ingest == nil {
		t.Fatal("missing single/live/ingest blocks")
	}
	if w.Map != nil || w.Slab != nil || w.Sharded != nil {
		t.Error("ingest artifact carries unrelated metric blocks")
	}
	ib := w.Ingest
	if ib.Writes != 40 || ib.Publishes < 2 || ib.FinalEpoch < 3 {
		t.Errorf("write accounting: %+v, want 40 writes over ≥2 publishes reaching epoch ≥3", ib)
	}
}
