// Command soibuild compiles a dataset into a binary index snapshot (.soi
// file) that soiserve -index memory-maps at startup, skipping all index
// construction.
//
// Build from a CSV dataset directory (see soigen):
//
//	soibuild -data ./data/berlin -out berlin.soi
//
// Or generate a synthetic city and snapshot it in one step:
//
//	soibuild -city berlin -scale 0.25 -out berlin.soi
//
// The snapshot embeds the road network, the POI and photo corpora, the
// keyword dictionary and the compact slab index at the chosen -cell
// size. Serving from it is bit-identical to building the index from the
// same data at the same cell size.
//
// With -shards N the dataset is spatially partitioned instead: one .soi
// snapshot per populated tile plus a JSON manifest at -out tying them
// together (tile grid, global bounds, halo, id maps). The manifest is
// what the scatter-gather coordinator loads; -halo bounds the largest
// query ε the partition answers exactly:
//
//	soibuild -city berlin -shards 4 -halo 0.0012 -out berlin.shards.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	soi "repro"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataio"
	"repro/internal/network"
	"repro/internal/photo"
	"repro/internal/poi"
	"repro/internal/shard"
	"repro/internal/snapshot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("soibuild: ")
	var (
		city    = flag.String("city", "", "generate a synthetic city: london, berlin, vienna, small")
		scale   = flag.Float64("scale", 1.0, "volume scale factor for -city")
		seed    = flag.Int64("seed", 0, "override the profile seed for -city (0 keeps the default)")
		dataDir = flag.String("data", "", "load a CSV dataset directory instead of generating")
		cell    = flag.Float64("cell", soi.DefaultCellSize, "grid cell size the slab index is built at")
		out     = flag.String("out", "world.soi", "output snapshot path (manifest path with -shards)")
		shards  = flag.Int("shards", 0, "partition into N spatial tiles and write per-shard snapshots + manifest")
		halo    = flag.Float64("halo", 0.0012, "POI replication radius for -shards (largest exact query ε)")
	)
	flag.Parse()
	if *cell <= 0 {
		log.Fatalf("-cell must be positive, got %g", *cell)
	}
	if *shards < 0 {
		log.Fatalf("-shards must be non-negative, got %d", *shards)
	}
	if *shards > 0 && *halo <= 0 {
		log.Fatalf("-halo must be positive with -shards, got %g", *halo)
	}

	net, pois, photos, err := loadDataset(*city, *scale, *seed, *dataDir)
	if err != nil {
		log.Fatal(err)
	}
	if *shards > 0 {
		w, err := shard.Partition(net, pois, shard.Config{
			Tiles: *shards, Halo: *halo, CellSize: *cell, Compact: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := shard.WriteSnapshots(*out, w); err != nil {
			log.Fatal(err)
		}
		ns := net.Stats()
		fmt.Printf("%s: %d streets, %d segments, %d POIs across %d shards (%d×%d tiles, halo %g), cell %g -> %s\n",
			datasetName(*city, *dataDir), ns.NumStreets, ns.NumSegments, pois.Len(),
			len(w.Shards), w.TilesX, w.TilesY, *halo, *cell, *out)
		return
	}
	six, err := core.NewSlabIndex(net, pois, core.IndexConfig{CellSize: *cell})
	if err != nil {
		log.Fatalf("building slab index: %v", err)
	}
	if err := snapshot.WriteFile(*out, &snapshot.Snapshot{
		Net: net, POIs: pois, Photos: photos, Slab: six.Slab(),
	}); err != nil {
		log.Fatal(err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		log.Fatal(err)
	}
	ns := net.Stats()
	fmt.Printf("%s: %d streets, %d segments, %d POIs, %d photos, cell %g -> %s (%d bytes)\n",
		datasetName(*city, *dataDir), ns.NumStreets, ns.NumSegments,
		pois.Len(), photos.Len(), *cell, *out, st.Size())
}

func loadDataset(city string, scale float64, seed int64, dataDir string) (*network.Network, *poi.Corpus, *photo.Corpus, error) {
	switch {
	case dataDir != "" && city != "":
		return nil, nil, nil, fmt.Errorf("-city and -data are mutually exclusive")
	case dataDir != "":
		net, pois, photos, _, err := dataio.LoadDir(dataDir)
		if err != nil {
			return nil, nil, nil, err
		}
		return net, pois, photos, nil
	case city != "":
		var p datagen.Profile
		switch strings.ToLower(city) {
		case "london":
			p = datagen.London()
		case "berlin":
			p = datagen.Berlin()
		case "vienna":
			p = datagen.Vienna()
		case "small":
			p = datagen.Small(1)
		default:
			return nil, nil, nil, fmt.Errorf("unknown city %q (want london, berlin, vienna, or small)", city)
		}
		if seed != 0 {
			p.Seed = seed
		}
		ds, err := datagen.Generate(datagen.Scale(p, scale))
		if err != nil {
			return nil, nil, nil, err
		}
		return ds.Network, ds.POIs, ds.Photos, nil
	default:
		return nil, nil, nil, fmt.Errorf("provide -city or -data")
	}
}

func datasetName(city, dataDir string) string {
	if dataDir != "" {
		return dataDir
	}
	return city
}
