// Command soigen generates a synthetic city dataset (road network, POIs,
// photos and ground truth) and writes it as CSV files.
//
// Usage:
//
//	soigen -city berlin -scale 0.1 -out ./data/berlin
//
// The output directory receives streets.csv, pois.csv, photos.csv and
// groundtruth.txt. With -snapshot the same dataset is additionally
// compiled into a binary index snapshot that soiserve -index can
// memory-map directly:
//
//	soigen -city berlin -scale 0.1 -out ./data/berlin -snapshot berlin.soi
//
// With -traces N the directory additionally receives traces.geojson: N
// synthetic movement traces (jittered random walks over the street
// network) for exercising the trajectory query family (soibench -traj,
// POST /api/trajectories/soi).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	soi "repro"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataio"
	"repro/internal/geojson"
	"repro/internal/snapshot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("soigen: ")
	var (
		city  = flag.String("city", "berlin", "city profile: london, berlin, vienna, or small")
		scale = flag.Float64("scale", 1.0, "volume scale factor applied to the profile")
		seed  = flag.Int64("seed", 0, "override the profile seed (0 keeps the default)")
		out   = flag.String("out", ".", "output directory")
		snap   = flag.String("snapshot", "", "also write a binary index snapshot (.soi) to this path (see soibuild, soiserve -index)")
		cell   = flag.Float64("cell", soi.DefaultCellSize, "grid cell size for the -snapshot slab index")
		traces = flag.Int("traces", 0, "also write this many synthetic movement traces as traces.geojson (random walks over the street network)")
	)
	flag.Parse()

	profile, err := profileByName(*city)
	if err != nil {
		log.Fatal(err)
	}
	if *seed != 0 {
		profile.Seed = *seed
	}
	profile = datagen.Scale(profile, *scale)

	ds, err := datagen.Generate(profile)
	if err != nil {
		log.Fatalf("generating %s: %v", profile.Name, err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	if err := writeFile(filepath.Join(*out, "streets.csv"), func(w *bufio.Writer) error {
		return dataio.WriteNetwork(w, ds.Network)
	}); err != nil {
		log.Fatal(err)
	}
	if err := writeFile(filepath.Join(*out, "pois.csv"), func(w *bufio.Writer) error {
		return dataio.WritePOIs(w, ds.POIs)
	}); err != nil {
		log.Fatal(err)
	}
	if err := writeFile(filepath.Join(*out, "photos.csv"), func(w *bufio.Writer) error {
		return dataio.WritePhotos(w, ds.Photos)
	}); err != nil {
		log.Fatal(err)
	}
	if err := writeFile(filepath.Join(*out, "groundtruth.txt"), func(w *bufio.Writer) error {
		fmt.Fprintf(w, "photo_street: %s\n", ds.Truth.PhotoStreet)
		fmt.Fprintf(w, "shopping_streets: %s\n", strings.Join(ds.Truth.ShoppingStreets, "; "))
		fmt.Fprintf(w, "source_1: %s\n", strings.Join(ds.Truth.SourceLists[0], "; "))
		fmt.Fprintf(w, "source_2: %s\n", strings.Join(ds.Truth.SourceLists[1], "; "))
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	if *traces > 0 {
		walks := datagen.Traces(ds.Network, profile.Seed, *traces)
		if err := writeFile(filepath.Join(*out, "traces.geojson"), func(w *bufio.Writer) error {
			fc := geojson.NewCollection()
			fc.AddTraces(walks)
			return fc.Write(w)
		}); err != nil {
			log.Fatal(err)
		}
	}
	if *snap != "" {
		six, err := core.NewSlabIndex(ds.Network, ds.POIs, core.IndexConfig{CellSize: *cell})
		if err != nil {
			log.Fatalf("building slab index: %v", err)
		}
		if err := snapshot.WriteFile(*snap, &snapshot.Snapshot{
			Net: ds.Network, POIs: ds.POIs, Photos: ds.Photos, Slab: six.Slab(),
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: wrote index snapshot (cell %g) -> %s\n", profile.Name, *cell, *snap)
	}
	st := ds.Network.Stats()
	fmt.Printf("%s: %d streets, %d segments, %d POIs, %d photos -> %s\n",
		profile.Name, st.NumStreets, st.NumSegments, ds.POIs.Len(), ds.Photos.Len(), *out)
}

func profileByName(name string) (datagen.Profile, error) {
	switch strings.ToLower(name) {
	case "london":
		return datagen.London(), nil
	case "berlin":
		return datagen.Berlin(), nil
	case "vienna":
		return datagen.Vienna(), nil
	case "small":
		return datagen.Small(1), nil
	default:
		return datagen.Profile{}, fmt.Errorf("unknown city %q (want london, berlin, vienna, or small)", name)
	}
}

func writeFile(path string, fill func(*bufio.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := fill(w); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
