package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// The tests re-exec the test binary as the CLI: TestMain dispatches to
// main() when the marker variable is set, so flag parsing, log.Fatal
// exit codes and file output are exercised exactly as shipped.
func TestMain(m *testing.M) {
	if os.Getenv("SOIGEN_BE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runCLI(t *testing.T, args ...string) (stdout, stderr string, exit int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "SOIGEN_BE_MAIN=1")
	var out, errb strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	exit = 0
	if ee, ok := err.(*exec.ExitError); ok {
		exit = ee.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	return out.String(), errb.String(), exit
}

func TestGenerateSmall(t *testing.T) {
	dir := t.TempDir()
	stdout, stderr, exit := runCLI(t, "-city", "small", "-out", dir)
	if exit != 0 {
		t.Fatalf("exit %d, stderr: %s", exit, stderr)
	}
	// The Small(1) profile is deterministic; pin its shape.
	want := "Smallville: 173 streets, 1583 segments, 7650 POIs, 1450 photos"
	if !strings.Contains(stdout, want) {
		t.Fatalf("stdout %q missing %q", stdout, want)
	}
	for _, name := range []string{"streets.csv", "pois.csv", "photos.csv", "groundtruth.txt"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing output %s: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("empty output %s", name)
		}
	}
	gt, err := os.ReadFile(filepath.Join(dir, "groundtruth.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(gt), "photo_street: Neue Schönhauser Straße") {
		t.Fatalf("groundtruth missing photo street:\n%s", gt)
	}
}

func TestSeedOverrideChangesData(t *testing.T) {
	a, b := t.TempDir(), t.TempDir()
	if _, stderr, exit := runCLI(t, "-city", "small", "-out", a); exit != 0 {
		t.Fatalf("exit %d: %s", exit, stderr)
	}
	if _, stderr, exit := runCLI(t, "-city", "small", "-seed", "99", "-out", b); exit != 0 {
		t.Fatalf("exit %d: %s", exit, stderr)
	}
	pa, err := os.ReadFile(filepath.Join(a, "pois.csv"))
	if err != nil {
		t.Fatal(err)
	}
	pb, err := os.ReadFile(filepath.Join(b, "pois.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(pa) == string(pb) {
		t.Fatal("-seed 99 produced identical POIs to the default seed")
	}
}

func TestBadInput(t *testing.T) {
	if _, stderr, exit := runCLI(t, "-city", "nowhere"); exit == 0 {
		t.Fatal("unknown city accepted")
	} else if !strings.Contains(stderr, "unknown city") {
		t.Fatalf("stderr %q missing diagnosis", stderr)
	}
	if _, _, exit := runCLI(t, "-bogus"); exit != 2 {
		t.Fatalf("bad flag: exit %d, want 2", exit)
	}
	// An unwritable output path must fail loudly, not silently succeed.
	if _, _, exit := runCLI(t, "-city", "small", "-out", "/dev/null/nope"); exit == 0 {
		t.Fatal("unwritable -out accepted")
	}
}
