// Command soicheck is the correctness gate of the repository: it sweeps a
// range of seeded deterministic worlds and asserts that every production
// evaluator — the exact baseline, Algorithm 1 under both access
// strategies, the shared-cache path, a dynamically-grown index, the
// spatially sharded scatter-gather coordinator (2/4/9 tiles) and the
// parallel engine — agrees with the brute-force oracle across a grid of
// (ε, k, |Ψ|, density) configurations, along with the metamorphic suite
// and the diversification cross-check.
//
// On divergence it shrinks the failing world to a minimal reproducing one,
// writes it as a GeoJSON repro file (with the diverging query attached as
// an annotation feature) and exits non-zero.
//
// Usage:
//
//	soicheck -seeds 0:200 -quick            # PR smoke slice
//	soicheck -seeds 0:500 -out ./repros     # nightly full matrix
//	soicheck -seeds 0:50 -interleaved       # live-ingest interleaved matrix
//	soicheck -seeds 0:50 -quick -remote     # + cross-process remote matrix
//	soicheck -seeds 0:50 -quick -routes -traj  # + trajectory-family differentials
//
// With -remote each differential world additionally runs the
// cross-process scatter-gather comparison: every shard of the partition
// is served by a real loopback HTTP server and gathered through the
// fault-tolerant remote client, which must stay bit-identical to the
// brute-force oracle at every tile count.
//
// With -interleaved each seed instead runs the interleaved differential
// mode: a writer streams half the world's POIs through the epoch-based
// ingest path, publishing and finally compacting, while concurrent
// query goroutines are cross-checked bit-exactly against the oracle at
// whichever epoch each answer was evaluated — see oracle.DiffInterleaved.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/geojson"
	"repro/internal/oracle"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

// failure couples a divergence with the world that produced it.
type failure struct {
	cfg  oracle.SeedConfig
	div  oracle.Divergence
	repr string // path of the written repro, if any
}

func run(args []string, out io.Writer) int {
	log.SetFlags(0)
	log.SetPrefix("soicheck: ")
	fs := flag.NewFlagSet("soicheck", flag.ContinueOnError)
	var (
		seeds    = fs.String("seeds", "0:20", "seed range lo:hi (hi exclusive)")
		quick    = fs.Bool("quick", false, "quick mode: one density, a 3-query slice per seed")
		workers  = fs.Int("workers", 4, "seeds checked concurrently")
		outDir   = fs.String("out", ".", "directory for GeoJSON repro files")
		noShrink = fs.Bool("noshrink", false, "report divergences without shrinking a repro")
		budget   = fs.Int("shrink-budget", oracle.DefaultShrinkChecks, "max predicate evaluations per shrink")
		interl   = fs.Bool("interleaved", false, "run the interleaved live-ingest differential mode instead of the static matrix")
		remoteM  = fs.Bool("remote", false, "additionally cross-check the cross-process scatter-gather path (each shard behind a real loopback HTTP server)")
		routesM  = fs.Bool("routes", false, "additionally cross-check k-most-interesting-routes search against the exhaustive path-enumeration oracle")
		trajM    = fs.Bool("traj", false, "additionally cross-check trajectory map-matching and trajectory-aware SOI against the full-scan oracle")
		rounds   = fs.Int("rounds", 0, "with -interleaved: publish rounds per seed (0 = default)")
		qworkers = fs.Int("query-workers", 0, "with -interleaved: concurrent query goroutines per seed (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	lo, hi, err := parseRange(*seeds)
	if err != nil {
		log.Print(err)
		return 2
	}
	if *workers < 1 {
		log.Printf("invalid -workers %d", *workers)
		return 2
	}

	type job struct{ seed int64 }
	jobs := make(chan job)
	var (
		mu       sync.Mutex
		failures []failure
		fatalErr error
		configs  int
		queries  int
	)
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				for _, cfg := range oracle.MatrixConfigs(j.seed, *quick) {
					var divs []oracle.Divergence
					var err error
					checked := len(cfg.Queries)
					if *interl {
						var rep oracle.InterleaveReport
						divs, rep, err = oracle.DiffInterleaved(cfg, oracle.InterleaveOptions{
							Rounds:       *rounds,
							QueryWorkers: *qworkers,
						})
						checked = rep.Answers
					} else {
						divs, err = oracle.CheckConfig(cfg, oracle.Options{Remote: *remoteM, Routes: *routesM, Traj: *trajM})
					}
					mu.Lock()
					configs++
					queries += checked
					if err != nil && fatalErr == nil {
						fatalErr = fmt.Errorf("%s: %w", cfg.Label(), err)
					}
					for _, d := range divs {
						failures = append(failures, failure{cfg: cfg, div: d})
					}
					mu.Unlock()
				}
			}
		}()
	}
	for s := lo; s < hi; s++ {
		jobs <- job{seed: s}
	}
	close(jobs)
	wg.Wait()

	if fatalErr != nil {
		log.Print(fatalErr)
		return 2
	}
	if len(failures) == 0 {
		fmt.Fprintf(out, "soicheck: OK — %d seeds, %d configs, %d queries, 0 divergences\n",
			hi-lo, configs, queries)
		return 0
	}

	for i := range failures {
		f := &failures[i]
		fmt.Fprintf(out, "soicheck: DIVERGENCE %s: %s\n", f.cfg.Label(), f.div)
		if *noShrink || strings.HasPrefix(f.div.Impl, "ingest/") {
			// Interleaved divergences depend on concurrent schedules; the
			// deterministic shrinker cannot re-detect them, so report only.
			continue
		}
		path, err := writeRepro(*outDir, f.cfg, f.div, *budget)
		if err != nil {
			log.Printf("writing repro for seed %d: %v", f.cfg.Seed, err)
			continue
		}
		f.repr = path
		fmt.Fprintf(out, "soicheck: repro written to %s\n", path)
	}
	fmt.Fprintf(out, "soicheck: FAIL — %d divergences across %d seeds\n", len(failures), hi-lo)
	return 1
}

// writeRepro shrinks the failing world to a minimal one that still shows
// a divergence for the failing query (or check family) and writes it as
// GeoJSON with the query attached as an annotation feature.
func writeRepro(dir string, cfg oracle.SeedConfig, div oracle.Divergence, budget int) (string, error) {
	w, err := cfg.BuildWorld()
	if err != nil {
		return "", err
	}
	pred := reproPredicate(cfg, div)
	if pred(w) {
		w = oracle.Shrink(w, pred, budget)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("soicheck-repro-seed%d.geojson", cfg.Seed))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	note := geojson.Feature{
		Type:     "Feature",
		Geometry: geojson.Geometry{Type: "Point", Coordinates: []float64{0, 0}},
		Properties: map[string]interface{}{
			"kind":     "soicheck-divergence",
			"impl":     div.Impl,
			"cell":     div.CellSize,
			"keywords": strings.Join(div.Query.Keywords, ","),
			"k":        div.Query.K,
			"epsilon":  div.Query.Epsilon,
			"detail":   div.Detail,
			"config":   cfg.Label(),
		},
	}
	if err := w.WriteGeoJSON(f, note); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// reproPredicate re-detects the divergence class on candidate worlds:
// differential divergences re-run the (cheapest sufficient) differential
// matrix on the one failing query; metamorphic and summary divergences
// re-run their suite.
func reproPredicate(cfg oracle.SeedConfig, div oracle.Divergence) oracle.Predicate {
	switch {
	case strings.HasPrefix(div.Impl, "metamorphic/"):
		return func(w oracle.World) bool {
			divs, err := oracle.Metamorphic(w, focusQueries(cfg, div), oracle.Options{})
			return err == nil && len(divs) > 0
		}
	case strings.HasPrefix(div.Impl, "diversify/"):
		return func(w oracle.World) bool {
			divs, err := oracle.CheckSummary(w, oracle.SummaryParams)
			return err == nil && len(divs) > 0
		}
	case strings.HasPrefix(div.Impl, "routes/"), strings.HasPrefix(div.Impl, "traj/"):
		// Trajectory-family divergences re-run DiffTraj with only the
		// failing family enabled; the cases re-derive from the seed, so
		// they stay comparable as the shrinker removes world elements
		// (traces shrink like any other removable element).
		opt := oracle.Options{
			Routes:    strings.HasPrefix(div.Impl, "routes/"),
			Traj:      strings.HasPrefix(div.Impl, "traj/"),
			CellSizes: cellFocus(div),
		}
		return func(w oracle.World) bool {
			divs, err := oracle.DiffTraj(w, cfg.Seed, opt)
			return err == nil && len(divs) > 0
		}
	default:
		opt := oracle.Options{
			SkipEngine:  !strings.HasPrefix(div.Impl, "engine/"),
			SkipDynamic: !strings.HasPrefix(div.Impl, "dynamic/"),
			SkipShards:  !strings.HasPrefix(div.Impl, "shard/"),
			Remote:      strings.HasPrefix(div.Impl, "remote/"),
			CellSizes:   cellFocus(div),
		}
		if strings.HasPrefix(div.Impl, "shard/") {
			var tiles int
			if _, err := fmt.Sscanf(div.Impl, "shard/%d", &tiles); err == nil && tiles > 0 {
				opt.ShardCounts = []int{tiles}
			}
		}
		if strings.HasPrefix(div.Impl, "remote/") {
			var tiles int
			if _, err := fmt.Sscanf(div.Impl, "remote/%d", &tiles); err == nil && tiles > 0 {
				opt.ShardCounts = []int{tiles}
			}
		}
		return func(w oracle.World) bool {
			divs, err := oracle.DiffWorld(w, focusQueries(cfg, div), opt)
			return err == nil && len(divs) > 0
		}
	}
}

// focusQueries narrows the re-check to the diverging query when the
// divergence names one, keeping shrink predicates cheap.
func focusQueries(cfg oracle.SeedConfig, div oracle.Divergence) []core.Query {
	if len(div.Query.Keywords) > 0 {
		return []core.Query{div.Query}
	}
	return cfg.Queries
}

func cellFocus(div oracle.Divergence) []float64 {
	if div.CellSize > 0 {
		return []float64{div.CellSize}
	}
	return nil
}

func parseRange(s string) (lo, hi int64, err error) {
	if _, err := fmt.Sscanf(s, "%d:%d", &lo, &hi); err != nil {
		return 0, 0, fmt.Errorf("invalid -seeds %q (want lo:hi)", s)
	}
	if lo < 0 || hi <= lo {
		return 0, 0, fmt.Errorf("invalid -seeds range %q (want 0 ≤ lo < hi)", s)
	}
	return lo, hi, nil
}
