package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/oracle"
)

func TestRunQuickSliceIsClean(t *testing.T) {
	var buf strings.Builder
	code := run([]string{"-seeds", "0:3", "-quick", "-workers", "2", "-out", t.TempDir()}, &buf)
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "OK") || !strings.Contains(buf.String(), "0 divergences") {
		t.Fatalf("unexpected output: %s", buf.String())
	}
}

// TestRunInterleavedSliceIsClean drives the interleaved live-ingest mode
// through the CLI: a small seed slice must cross-check cleanly, with the
// answer count (not the static query-grid size) reported.
func TestRunInterleavedSliceIsClean(t *testing.T) {
	var buf strings.Builder
	code := run([]string{"-seeds", "0:2", "-quick", "-interleaved", "-workers", "2",
		"-rounds", "2", "-query-workers", "2", "-out", t.TempDir()}, &buf)
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "OK") || !strings.Contains(buf.String(), "0 divergences") {
		t.Fatalf("unexpected output: %s", buf.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := [][]string{
		{"-seeds", "5:4"},
		{"-seeds", "abc"},
		{"-seeds", "-3:2"},
		{"-seeds", "0:2", "-workers", "0"},
		{"-bogus"},
	}
	for _, args := range cases {
		var buf strings.Builder
		if code := run(args, &buf); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestParseRange(t *testing.T) {
	lo, hi, err := parseRange("10:200")
	if err != nil || lo != 10 || hi != 200 {
		t.Fatalf("parseRange(10:200) = %d, %d, %v", lo, hi, err)
	}
	for _, bad := range []string{"", "5", "5:", ":5", "5:5", "x:y"} {
		if _, _, err := parseRange(bad); err == nil {
			t.Errorf("parseRange(%q): want error", bad)
		}
	}
}

// TestWriteRepro exercises the repro writer with a fabricated divergence:
// the predicate won't re-fire (the implementations agree), so the
// unshrunk world is serialized with the annotation feature attached.
func TestWriteRepro(t *testing.T) {
	dir := t.TempDir()
	cfg := oracle.MatrixConfigs(1, true)[0]
	div := oracle.Divergence{
		Impl:     "soi/cost-aware",
		CellSize: 0.0005,
		Query:    core.Query{Keywords: []string{"shop"}, K: 3, Epsilon: 0.0005},
		Detail:   "fabricated for the writer test",
	}
	path, err := writeRepro(dir, cfg, div, 100)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "soicheck-repro-seed1.geojson" {
		t.Fatalf("unexpected repro name %s", path)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"FeatureCollection", "soicheck-divergence", "soi/cost-aware", "shop"} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("repro missing %q:\n%.300s", want, b)
		}
	}
}
