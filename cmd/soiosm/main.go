// Command soiosm converts an OpenStreetMap XML extract into the CSV
// dataset format of the other tools, so real city data can replace the
// synthetic generator:
//
//	soiosm -in extract.osm -out ./data/city
//	soiquery -data ./data/city -keywords cafe -k 10
//
// Streets come from highway-tagged ways; POIs from nodes carrying
// amenity/shop/tourism/leisure/religion tags. Photos are not part of OSM;
// an empty photos.csv is written so the directory loads, and a real
// photo layer can be dropped in alongside.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/dataio"
	"repro/internal/osm"
	"repro/internal/photo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("soiosm: ")
	var (
		in       = flag.String("in", "", "OSM XML extract to read (required)")
		out      = flag.String("out", ".", "output dataset directory")
		highways = flag.String("highways", "", "comma-separated highway classes to keep (empty = all)")
	)
	flag.Parse()
	if *in == "" {
		log.Fatal("provide -in extract.osm")
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	var opts osm.Options
	if *highways != "" {
		for _, h := range strings.Split(*highways, ",") {
			if t := strings.TrimSpace(h); t != "" {
				opts.Highways = append(opts.Highways, t)
			}
		}
	}
	net, pois, stats, err := osm.ParseXML(bufio.NewReader(f), opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	write := func(name string, fill func(*bufio.Writer) error) {
		f, err := os.Create(filepath.Join(*out, name))
		if err != nil {
			log.Fatal(err)
		}
		w := bufio.NewWriter(f)
		if err := fill(w); err != nil {
			log.Fatalf("writing %s: %v", name, err)
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	write("streets.csv", func(w *bufio.Writer) error { return dataio.WriteNetwork(w, net) })
	write("pois.csv", func(w *bufio.Writer) error { return dataio.WritePOIs(w, pois) })
	write("photos.csv", func(w *bufio.Writer) error {
		return dataio.WritePhotos(w, photo.NewBuilder(pois.Dict()).Build())
	})
	fmt.Println(stats)
	fmt.Printf("wrote %s\n", *out)
}
