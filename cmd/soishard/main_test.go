package main

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/remote"
	"repro/internal/shard"
)

// The tests re-exec the test binary as the CLI: TestMain dispatches to
// main() when the marker variable is set, so flag parsing, snapshot
// loading, signal handling and exit codes are exercised exactly as
// shipped — each spawned soishard is a real separate process.
func TestMain(m *testing.M) {
	if os.Getenv("SOISHARD_BE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// writeManifest partitions a deterministic dataset, persists the
// per-shard snapshots + manifest into a temp dir, and returns the
// manifest path with the reloaded world (the in-process oracle).
func writeManifest(t *testing.T) (string, *shard.World) {
	t.Helper()
	ds, err := datagen.Generate(datagen.Tiny(7))
	if err != nil {
		t.Fatal(err)
	}
	w, err := shard.Partition(ds.Network, ds.POIs,
		shard.Config{Tiles: 2, Halo: 0.0012, CellSize: 0.0005, Compact: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Shards) < 2 {
		t.Fatalf("dataset partitioned into %d shards, need ≥ 2 for the e2e", len(w.Shards))
	}
	mf := filepath.Join(t.TempDir(), "world.manifest")
	if err := shard.WriteSnapshots(mf, w); err != nil {
		t.Fatal(err)
	}
	loaded, err := shard.LoadWorld(mf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { loaded.Close() })
	return mf, loaded
}

// shardProc is one spawned soishard child process.
type shardProc struct {
	cmd    *exec.Cmd
	addr   string // host:port it actually listens on
	stderr *strings.Builder
	mu     *sync.Mutex
	// done closes once the child is reaped; waitErr is valid after.
	done    chan struct{}
	waitErr error
	// scanDone closes once the stderr scanner hits EOF — only then is
	// log() guaranteed to hold the child's complete output.
	scanDone chan struct{}
}

func (p *shardProc) log() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stderr.String()
}

// startShard spawns soishard for one manifest shard on an OS-assigned
// port (-addr 127.0.0.1:0), parses the bound address from the child's
// startup log line, and waits for /readyz to answer 200.
func startShard(t *testing.T, manifest string, id int) *shardProc {
	t.Helper()
	cmd := exec.Command(os.Args[0],
		"-manifest", manifest, "-shard", fmt.Sprint(id), "-addr", "127.0.0.1:0",
		"-shutdown-grace", "5s")
	cmd.Env = append(os.Environ(), "SOISHARD_BE_MAIN=1")
	// An explicit pipe instead of StderrPipe: Wait must not close the
	// read side under the scanner, or the final drain lines are lost.
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = pw
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	pw.Close() // the child holds the write end; EOF follows its exit
	p := &shardProc{cmd: cmd, stderr: &strings.Builder{}, mu: &sync.Mutex{},
		done: make(chan struct{}), scanDone: make(chan struct{})}
	addrc := make(chan string, 1)
	go func() {
		defer close(p.scanDone)
		defer pr.Close()
		sc := bufio.NewScanner(pr)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.stderr.WriteString(line + "\n")
			p.mu.Unlock()
			// "soishard: serving shard 0/2 (...) on 127.0.0.1:43210"
			if i := strings.LastIndex(line, " on "); i >= 0 && strings.Contains(line, "serving shard") {
				select {
				case addrc <- line[i+len(" on "):]:
				default:
				}
			}
		}
	}()
	go func() { p.waitErr = cmd.Wait(); close(p.done) }()
	t.Cleanup(func() {
		cmd.Process.Kill()
		<-p.done
	})
	select {
	case p.addr = <-addrc:
	case <-p.done:
		t.Fatalf("shard %d exited before listening: %v\n%s", id, p.waitErr, p.log())
	case <-time.After(15 * time.Second):
		t.Fatalf("shard %d never announced its address\n%s", id, p.log())
	}
	waitReady(t, p.addr)
	return p
}

func waitReady(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s/readyz never answered 200", addr)
}

// e2eQueries spans pruned and unpruned shards: broad keyword sets that
// need every tile plus narrow ones a single shard can answer.
func e2eQueries() []core.Query {
	return []core.Query{
		{Keywords: []string{"shop", "food"}, K: 5, Epsilon: 0.0005},
		{Keywords: []string{"cafe"}, K: 3, Epsilon: 0.0008},
		{Keywords: []string{"shop", "cafe", "food"}, K: 10, Epsilon: 0.001},
		{Keywords: []string{"food"}, K: 1, Epsilon: 0.0003},
	}
}

// TestE2ECrossProcessScatterGather is the full three-process contract
// test: two real soishard children serve the shards, the test process
// runs the fault-tolerant client + coordinator against them, and every
// clean answer must be bit-identical to the in-process coordinator over
// the same snapshots. Then one child is killed mid-run: strict queries
// must refuse with the typed unavailable error, partial queries must
// degrade honestly (tagged, naming the dead shard) — never hang, never
// silently answer wrong.
func TestE2ECrossProcessScatterGather(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	mf, world := writeManifest(t)
	procs := make([]*shardProc, len(world.Shards))
	addrs := make([][]string, len(world.Shards))
	for i := range world.Shards {
		procs[i] = startShard(t, mf, i)
		addrs[i] = []string{procs[i].addr}
	}

	client, err := remote.NewClient(remote.Config{
		Addrs:          addrs,
		AttemptTimeout: 10 * time.Second,
		MaxAttempts:    2,
		BackoffBase:    time.Millisecond,
		BackoffMax:     5 * time.Millisecond,
		DisableHedge:   true, // loopback needs no hedges; keeps counters deterministic
	})
	if err != nil {
		t.Fatal(err)
	}
	coord := shard.NewRemoteCoordinator(client, world.Halo)
	oracle := shard.NewCoordinator(world)
	ctx := context.Background()

	// Phase 1: all shards up — every answer clean and bit-identical.
	for _, q := range e2eQueries() {
		want, _, err := oracle.TopK(ctx, q)
		if err != nil {
			t.Fatalf("oracle %v: %v", q, err)
		}
		got, gather, err := coord.TopK(ctx, q, false)
		if err != nil {
			t.Fatalf("remote %v: %v", q, err)
		}
		if gather.Degraded || len(gather.MissingShards) > 0 {
			t.Fatalf("remote %v degraded over healthy shards: %+v", q, gather)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("remote %v diverged:\n got %+v\nwant %+v", q, got, want)
		}
	}

	// Phase 2: kill shard 0 outright (SIGKILL — no drain, the hard
	// failure mode) and re-run the workload.
	procs[0].cmd.Process.Kill()
	<-procs[0].done

	sawDegraded := false
	for _, q := range e2eQueries() {
		want, _, err := oracle.TopK(ctx, q)
		if err != nil {
			t.Fatalf("oracle %v: %v", q, err)
		}
		// Strict and partial must agree on reachability: strict refuses
		// exactly when partial degrades.
		got, gather, err := coord.TopK(ctx, q, true)
		if err != nil {
			t.Fatalf("partial query %v errored: %v", q, err)
		}
		_, _, strictErr := coord.TopK(ctx, q, false)
		if gather.Degraded {
			sawDegraded = true
			if len(gather.MissingShards) != 1 || gather.MissingShards[0] != 0 {
				t.Errorf("%v: missing shards %v, want [0]", q, gather.MissingShards)
			}
			if strictErr == nil {
				t.Errorf("%v: degraded partial answer but strict query succeeded", q)
			}
		} else {
			// Shard 0 pruned by its cached bound or not needed: the
			// answer must still be exact.
			if strictErr != nil {
				t.Errorf("%v: clean partial answer but strict query failed: %v", q, strictErr)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%v diverged after kill:\n got %+v\nwant %+v", q, got, want)
			}
		}
	}
	if !sawDegraded {
		t.Error("no query degraded after killing shard 0 — workload does not exercise the dead shard")
	}
}

// TestE2EGracefulDrain: SIGTERM must flip the shard through the drain
// path — logged drain, clean exit code 0 — rather than dying mid-flight.
func TestE2EGracefulDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	mf, world := writeManifest(t)
	_ = world
	p := startShard(t, mf, 0)
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-p.done:
		if p.waitErr != nil {
			t.Fatalf("SIGTERM exit: %v\n%s", p.waitErr, p.log())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("shard did not exit after SIGTERM\n%s", p.log())
	}
	select {
	case <-p.scanDone:
	case <-time.After(5 * time.Second):
		t.Fatalf("stderr scanner never saw EOF")
	}
	out := p.log()
	if !strings.Contains(out, "draining in-flight requests") {
		t.Errorf("drain not logged:\n%s", out)
	}
	if !strings.Contains(out, "shutdown complete") {
		t.Errorf("shutdown completion not logged:\n%s", out)
	}
}

// TestFlagAndLoadErrors: misuse must exit with a diagnosis — 2 for bad
// flags, 1 for load failures — before any socket is opened.
func TestFlagAndLoadErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	mf, _ := writeManifest(t)
	cases := []struct {
		name string
		args []string
		exit int
		want string // substring of stderr
	}{
		{"no manifest", []string{"-shard", "0"}, 2, "-manifest required"},
		{"no shard", []string{"-manifest", mf}, 2, "-shard required"},
		{"bad flag", []string{"-bogus"}, 2, ""},
		{"missing manifest file", []string{"-manifest", mf + ".nope", "-shard", "0"}, 1, "no such file"},
		{"shard out of range", []string{"-manifest", mf, "-shard", "99"}, 1, "out of range"},
	}
	for _, c := range cases {
		cmd := exec.Command(os.Args[0], c.args...)
		cmd.Env = append(os.Environ(), "SOISHARD_BE_MAIN=1")
		out, err := cmd.CombinedOutput()
		exit := 0
		if ee, ok := err.(*exec.ExitError); ok {
			exit = ee.ExitCode()
		} else if err != nil {
			t.Fatal(err)
		}
		if exit != c.exit {
			t.Errorf("%s: exit %d, want %d\n%s", c.name, exit, c.exit, out)
		}
		if c.want != "" && !strings.Contains(string(out), c.want) {
			t.Errorf("%s: stderr %q does not contain %q", c.name, out, c.want)
		}
	}
}
