// Command soishard serves one shard of a partitioned world over HTTP —
// the worker side of cross-process k-SOI scatter-gather. A coordinator
// (soiserve -shard-addrs) fans queries out to a fleet of these, one or
// more replicas per tile.
//
//	soibuild -data ./data/berlin -shards 2x2 -o world.manifest
//	soishard -manifest world.manifest -shard 0 -addr :9100
//	soishard -manifest world.manifest -shard 1 -addr :9101
//	...
//	soiserve -shard-manifest world.manifest -shard-addrs "localhost:9100;localhost:9101;..."
//
// Endpoints:
//
//	GET  /healthz      liveness: the process is up
//	GET  /readyz       readiness: shard index loaded and not draining
//	GET  /shard/meta   shard id, tile, halo, sizes (coordinator sanity check)
//	POST /shard/query  one shard-local k-SOI evaluation (or its bound)
//	GET  /metrics      Prometheus text exposition (soi_* namespace)
//
// Every evaluation runs through the same admission/timeout stack as the
// single-process server: bounded queueing with load shedding
// (-queue-depth, -max-queue-wait → 503 + Retry-After), per-query
// deadlines (-query-timeout → 504) and panic isolation. On
// SIGINT/SIGTERM the process flips /readyz to 503 (so balancers and
// half-open circuit breakers steer away), then drains in-flight
// requests for up to -shutdown-grace.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/remote"
	"repro/internal/shard"
	"repro/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(argv []string) int {
	log.SetFlags(0)
	log.SetPrefix("soishard: ")
	f, fs := newFlagSet()
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serveShard(ctx, f)
}

// flagSet groups the parsed command line.
type flagSet struct {
	manifest      string
	shardID       int
	addr          string
	workers       int
	cache         int
	queueDepth    int
	maxQueueWait  time.Duration
	queryTimeout  time.Duration
	shutdownGrace time.Duration
}

func newFlagSet() (*flagSet, *flag.FlagSet) {
	f := &flagSet{}
	fs := flag.NewFlagSet("soishard", flag.ContinueOnError)
	fs.StringVar(&f.manifest, "manifest", "", "partitioned-world manifest (soibuild -shards)")
	fs.IntVar(&f.shardID, "shard", -1, "shard id within the manifest to serve")
	fs.StringVar(&f.addr, "addr", ":9100", "listen address")
	fs.IntVar(&f.workers, "workers", 0, "max concurrent evaluations (0 = GOMAXPROCS)")
	fs.IntVar(&f.cache, "cache", 0, "query result cache capacity (0 = default, negative disables)")
	fs.IntVar(&f.queueDepth, "queue-depth", 256, "max queries waiting for a worker slot before shedding with 503 (0 = unbounded)")
	fs.DurationVar(&f.maxQueueWait, "max-queue-wait", 2*time.Second, "max time a query may wait for a worker slot before shedding (0 = unbounded)")
	fs.DurationVar(&f.queryTimeout, "query-timeout", 30*time.Second, "per-query evaluation deadline (0 = none)")
	fs.DurationVar(&f.shutdownGrace, "shutdown-grace", 10*time.Second, "how long to drain in-flight requests on SIGINT/SIGTERM")
	return f, fs
}

// serveShard loads the shard, serves it until ctx is cancelled, then
// drains gracefully. Returns the process exit code.
func serveShard(ctx context.Context, f *flagSet) int {
	if f.manifest == "" {
		log.Print("-manifest required")
		return 2
	}
	if f.shardID < 0 {
		log.Print("-shard required")
		return 2
	}
	sh, m, closer, err := shard.LoadShard(f.manifest, f.shardID)
	if err != nil {
		log.Print(err)
		return 1
	}
	defer closer.Close()

	rec := stats.NewRecorder()
	srv := remote.NewServer(remote.ShardData{
		ShardID:  sh.ID,
		Shards:   len(m.Shards),
		TileX:    sh.TileX,
		TileY:    sh.TileY,
		Halo:     m.Halo,
		CellSize: m.CellSize,
		Index:    sh.Index,
		Streets:  sh.Streets,
		Segments: sh.Segments,
	}, remote.ServerConfig{Engine: engine.Config{
		Workers:      f.workers,
		CacheSize:    f.cache,
		QueueDepth:   f.queueDepth,
		MaxQueueWait: f.maxQueueWait,
		QueryTimeout: f.queryTimeout,
		Recorder:     rec,
	}})

	ln, err := net.Listen("tcp", f.addr)
	if err != nil {
		log.Print(err)
		return 1
	}
	log.Printf("serving shard %d/%d (tile %d,%d: %d streets, %d segments) on %s",
		sh.ID, len(m.Shards), sh.TileX, sh.TileY, len(sh.Streets), len(sh.Segments), ln.Addr())
	if err := serveListener(ctx, ln, srv, f.shutdownGrace); err != nil {
		log.Print(err)
		return 1
	}
	log.Printf("shutdown complete")
	return 0
}

// serveListener runs the HTTP server until ctx is cancelled, then flips
// readiness off and drains in-flight requests for up to grace. The
// drain order matters: /readyz must answer 503 while the drain runs so
// balancers and half-open breaker probes stop re-admitting the process.
func serveListener(ctx context.Context, ln net.Listener, srv *remote.Server, grace time.Duration) error {
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	srv.SetDraining(true)
	log.Printf("signal received, draining in-flight requests (grace %v)", grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		hs.Close()
		return fmt.Errorf("graceful shutdown incomplete: %w", err)
	}
	return <-errc
}
