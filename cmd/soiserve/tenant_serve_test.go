package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	soi "repro"
	"repro/internal/server"
)

// TestMultiTenantServe is the end-to-end multi-tenant path: two
// snapshot cities served over a real listener through the tenant
// router, each answering with its own streets, then a graceful drain.
func TestMultiTenantServe(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"berlin", "vienna"} {
		streets := []soi.StreetInput{
			{Name: name + " High St", Polyline: []soi.Point{{X: 0, Y: 0}, {X: 0.002, Y: 0}}},
		}
		var pois []soi.POIInput
		for i := 0; i < 5; i++ {
			pois = append(pois, soi.POIInput{X: 0.0004 * float64(i), Y: 0.0001, Keywords: []string{"shop"}})
		}
		eng, err := soi.NewEngine(streets, pois, nil, soi.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.WriteSnapshot(filepath.Join(dir, name+".soi")); err != nil {
			t.Fatal(err)
		}
	}
	ts, err := server.NewTenantServer(server.TenantConfig{Dir: dir, MaxOpen: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- serveListener(ctx, ln, ts, 5*time.Second) }()

	base := "http://" + ln.Addr().String()
	for _, city := range []string{"berlin", "vienna", "berlin"} { // third hit reloads the evicted tenant
		resp, err := http.Get(fmt.Sprintf("%s/api/%s/streets?keywords=shop&k=1&eps=0.0005", base, city))
		if err != nil {
			t.Fatal(err)
		}
		blob, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", city, resp.StatusCode, blob)
		}
		var body struct {
			Streets []struct{ Name string } `json:"streets"`
		}
		if err := json.Unmarshal(blob, &body); err != nil {
			t.Fatal(err)
		}
		if len(body.Streets) == 0 || body.Streets[0].Name != city+" High St" {
			t.Fatalf("%s answered %s", city, blob)
		}
	}

	cancel()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("graceful drain failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}
