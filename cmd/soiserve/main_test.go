package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestGracefulShutdownDrainsInFlight proves the SIGTERM sequence: with a
// request in flight, cancelling the serve context must let the request
// finish (drain, not drop) and serveListener must return nil — the exit-0
// path of an orchestrated restart.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		fmt.Fprint(w, "drained")
	})

	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- serveListener(ctx, ln, handler, 5*time.Second) }()

	var wg sync.WaitGroup
	wg.Add(1)
	var body string
	var reqErr error
	go func() {
		defer wg.Done()
		resp, err := http.Get("http://" + ln.Addr().String() + "/")
		if err != nil {
			reqErr = err
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			reqErr = err
			return
		}
		body = string(b)
	}()

	<-started
	cancel() // the SIGTERM moment: request still in flight
	// Give Shutdown a beat to stop accepting, then release the handler.
	time.Sleep(50 * time.Millisecond)
	close(release)

	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serveListener returned %v, want nil (clean drain)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveListener did not return after shutdown")
	}
	wg.Wait()
	if reqErr != nil {
		t.Fatalf("in-flight request failed during drain: %v", reqErr)
	}
	if body != "drained" {
		t.Fatalf("in-flight response = %q, want %q", body, "drained")
	}
}

// TestShutdownGraceExpiry: a request that outlives the grace period makes
// serveListener report the forced stop instead of hanging forever.
func TestShutdownGraceExpiry(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	block := make(chan struct{})
	defer close(block)
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-block
	})

	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- serveListener(ctx, ln, handler, 50*time.Millisecond) }()

	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	cancel()

	select {
	case err := <-serveErr:
		if err == nil {
			t.Fatal("serveListener returned nil despite a wedged request outliving the grace period")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveListener hung past the grace period")
	}
}
