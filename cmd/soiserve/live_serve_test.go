package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	soi "repro"
)

// TestBuildLiveEngineServesWrites covers the -live wiring end to end:
// buildLiveEngine over a generated city yields an engine whose HTTP
// handler accepts POST /api/pois and folds the write into a new epoch.
func TestBuildLiveEngineServesWrites(t *testing.T) {
	eng, err := buildLiveEngine("small", 0.25, "", soi.LiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if !eng.Live() || eng.Epoch() != 1 {
		t.Fatalf("live = %t epoch = %d, want live epoch 1", eng.Live(), eng.Epoch())
	}
	srv := httptest.NewServer(newHandler(eng, 1<<20))
	defer srv.Close()

	resp, err := srv.Client().Post(srv.URL+"/api/pois", "application/json",
		strings.NewReader(`{"x":0.001,"y":0.001,"keywords":["testwrite"],"publish":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("POST /api/pois: status %d", resp.StatusCode)
	}
	if eng.Epoch() != 2 {
		t.Fatalf("epoch after published write = %d, want 2", eng.Epoch())
	}
}

// TestBuildLiveEngineRejectsMissingSource pins the CLI contract that
// -live needs a buildable dataset.
func TestBuildLiveEngineRejectsMissingSource(t *testing.T) {
	if _, err := buildLiveEngine("", 1, "", soi.LiveConfig{}); err == nil {
		t.Fatal("buildLiveEngine without -city or -data succeeded")
	}
}
