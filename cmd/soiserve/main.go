// Command soiserve serves k-SOI, description and tour queries over HTTP
// for online exploration. It loads a CSV dataset (see soigen) or
// generates a synthetic city on startup.
//
//	soiserve -city berlin -scale 0.25 -addr :8080
//	soiserve -data ./data/berlin -addr :8080
//
// Endpoints:
//
//	GET /api/stats                 dataset summary + engine/runtime counters
//	GET /api/streets?keywords=shop&k=10&eps=0.0005&trace=1
//	GET /api/describe?street=Friedrichstraße&k=4
//	GET /api/tour?keywords=shop&k=10&budget=0.05
//	GET /metrics                   Prometheus text exposition
//	GET /debug/pprof/              net/http/pprof profiles
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	soi "repro"
	"repro/internal/datagen"
	"repro/internal/dataio"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("soiserve: ")
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		city    = flag.String("city", "", "generate a synthetic city: london, berlin, vienna, small")
		scale   = flag.Float64("scale", 0.25, "volume scale for -city")
		dataDir = flag.String("data", "", "load a CSV dataset directory instead of generating")
		workers = flag.Int("workers", 0, "max concurrent k-SOI evaluations (0 = GOMAXPROCS)")
		cache   = flag.Int("cache", 0, "query result cache capacity (0 = default, negative disables)")
	)
	flag.Parse()

	cfg := soi.Config{Workers: *workers, CacheSize: *cache}
	eng, err := buildEngine(*city, *scale, *dataDir, cfg)
	if err != nil {
		log.Fatal(err)
	}
	eng.Warm(soi.DefaultCellSize)
	log.Printf("serving %d streets, %d POIs, %d photos on %s",
		eng.NumStreets(), eng.NumPOIs(), eng.NumPhotos(), *addr)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newHandler(eng),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}

func buildEngine(city string, scale float64, dataDir string, cfg soi.Config) (*soi.Engine, error) {
	switch {
	case dataDir != "":
		return loadEngine(dataDir, cfg)
	case city != "":
		var p datagen.Profile
		switch strings.ToLower(city) {
		case "london":
			p = datagen.London()
		case "berlin":
			p = datagen.Berlin()
		case "vienna":
			p = datagen.Vienna()
		case "small":
			p = datagen.Small(1)
		default:
			return nil, fmt.Errorf("unknown city %q", city)
		}
		ds, err := datagen.Generate(datagen.Scale(p, scale))
		if err != nil {
			return nil, err
		}
		return soi.NewEngineFromCorpora(ds.Network, ds.POIs, ds.Photos, cfg)
	default:
		return nil, fmt.Errorf("provide -city or -data")
	}
}

func loadEngine(dir string, cfg soi.Config) (*soi.Engine, error) {
	net, pois, photos, _, err := dataio.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	return soi.NewEngineFromCorpora(net, pois, photos, cfg)
}

// newHandler wires the HTTP routes (internal/server).
func newHandler(eng *soi.Engine) http.Handler {
	return server.New(eng)
}
