// Command soiserve serves k-SOI, description and tour queries over HTTP
// for online exploration. It loads a CSV dataset (see soigen) or
// generates a synthetic city on startup.
//
//	soiserve -city berlin -scale 0.25 -addr :8080
//	soiserve -data ./data/berlin -addr :8080
//	soiserve -index berlin.soi -addr :8080
//	soiserve -tenants ./snapshots -addr :8080    # multi-tenant: /api/{city}/...
//
// With -tenants every *.soi snapshot in the directory becomes a city
// routed under /api/{city}/... (same endpoint set per city, plus
// GET /api/tenants listing them). Engines are mmap-loaded lazily, kept
// in an LRU of -max-tenants resident engines, and each tenant gets a
// -tenant-inflight admission quota layered on the shared load shedder.
//
// Endpoints:
//
//	GET /api/stats                 dataset summary + engine/runtime counters
//	GET /api/streets?keywords=shop&k=10&eps=0.0005&trace=1
//	GET /api/describe?street=Friedrichstraße&k=4
//	GET /api/tour?keywords=shop&k=10&budget=0.05
//	GET /metrics                   Prometheus text exposition
//	GET /debug/pprof/              net/http/pprof profiles
//
// The server is production-hardened: per-query deadlines
// (-query-timeout), bounded admission with load shedding (-queue-depth,
// -max-queue-wait → 503 + Retry-After), a capped batch request body
// (-max-batch-bytes → 413), and SIGINT/SIGTERM graceful shutdown that
// drains in-flight requests for up to -shutdown-grace before exiting 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	soi "repro"
	"repro/internal/datagen"
	"repro/internal/dataio"
	"repro/internal/remote"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("soiserve: ")
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		city          = flag.String("city", "", "generate a synthetic city: london, berlin, vienna, small")
		scale         = flag.Float64("scale", 0.25, "volume scale for -city")
		dataDir       = flag.String("data", "", "load a CSV dataset directory instead of generating")
		indexPath     = flag.String("index", "", "memory-map a prebuilt index snapshot (.soi, see soibuild) instead of building one")
		workers       = flag.Int("workers", 0, "max concurrent k-SOI evaluations (0 = GOMAXPROCS)")
		cache         = flag.Int("cache", 0, "query result cache capacity (0 = default, negative disables)")
		queueDepth    = flag.Int("queue-depth", 256, "max queries waiting for a worker slot before shedding with 503 (0 = unbounded)")
		maxQueueWait  = flag.Duration("max-queue-wait", 2*time.Second, "max time a query may wait for a worker slot before shedding (0 = unbounded)")
		queryTimeout  = flag.Duration("query-timeout", 30*time.Second, "per-query evaluation deadline (0 = none)")
		maxBatchBytes = flag.Int64("max-batch-bytes", server.DefaultMaxBatchBytes, "max /api/streets/batch request body size (negative = unlimited)")
		shutdownGrace = flag.Duration("shutdown-grace", 10*time.Second, "how long to drain in-flight requests on SIGINT/SIGTERM")

		live         = flag.Bool("live", false, "accept POI writes on POST /api/pois (epoch-based ingest; not with -index or -tenants)")
		batchSize    = flag.Int("publish-batch", 0, "with -live, auto-publish a new epoch once this many POIs are pending (0 = explicit publish only)")
		compactAfter = flag.Int("compact-after", 0, "with -live, auto-compact the delta log after this many publishes (0 = never)")
		snapshotPath = flag.String("snapshot-path", "", "with -live, persist the compacted base as a .soi snapshot here on every compaction")

		tenants        = flag.String("tenants", "", "serve every *.soi snapshot in this directory multi-tenant under /api/{city}/...")
		maxTenants     = flag.Int("max-tenants", server.DefaultMaxOpenTenants, "max snapshot engines resident at once with -tenants (LRU eviction)")
		tenantInflight = flag.Int("tenant-inflight", server.DefaultTenantInflight, "per-tenant admission quota with -tenants (503 over quota)")

		shardAddrs     = flag.String("shard-addrs", "", "serve by remote scatter-gather over soishard processes: per-shard replica address lists, shards separated by ';', replicas by ',' (e.g. \"host:9100,host:9200;host:9101\")")
		shardManifest  = flag.String("shard-manifest", "", "with -shard-addrs, the partition manifest (pins the ε ceiling and shard count without network round trips)")
		replicas       = flag.Int("replicas", 0, "with -shard-addrs, require exactly this many replica addresses per shard (0 = any)")
		attemptTimeout = flag.Duration("shard-attempt-timeout", 0, "with -shard-addrs, per-attempt timeout against one replica (0 = default)")
		shardRetries   = flag.Int("shard-retries", 0, "with -shard-addrs, retry rounds per shard call (0 = default)")
		hedgeDelay     = flag.Duration("hedge-delay", 0, "with -shard-addrs, fixed hedged-request delay (0 = adaptive p95)")
		breakerFails   = flag.Int("breaker-failures", 0, "with -shard-addrs, consecutive failures tripping a replica breaker (0 = default, negative disables)")
		breakerOpen    = flag.Duration("breaker-open", 0, "with -shard-addrs, how long a tripped breaker rejects before a half-open probe (0 = default)")
	)
	flag.Parse()

	cfg := soi.Config{
		Workers:      *workers,
		CacheSize:    *cache,
		QueueDepth:   *queueDepth,
		MaxQueueWait: *maxQueueWait,
		QueryTimeout: *queryTimeout,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *shardAddrs != "" {
		if *city != "" || *dataDir != "" || *indexPath != "" || *tenants != "" || *live {
			log.Fatal("-shard-addrs is mutually exclusive with -city, -data, -index, -tenants and -live")
		}
		handler, closeClient, err := buildRemoteHandler(ctx, remoteOptions{
			addrs:          *shardAddrs,
			manifest:       *shardManifest,
			replicas:       *replicas,
			attemptTimeout: *attemptTimeout,
			retries:        *shardRetries,
			hedgeDelay:     *hedgeDelay,
			breakerFails:   *breakerFails,
			breakerOpen:    *breakerOpen,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := serve(ctx, *addr, handler, *shutdownGrace); err != nil {
			log.Fatal(err)
		}
		closeClient()
		log.Printf("shutdown complete")
		return
	}

	if *tenants != "" {
		if *city != "" || *dataDir != "" || *indexPath != "" {
			log.Fatal("-tenants is mutually exclusive with -city, -data and -index")
		}
		if *live {
			log.Fatal("-live is not supported with -tenants")
		}
		ts, err := server.NewTenantServer(server.TenantConfig{
			Dir:         *tenants,
			MaxOpen:     *maxTenants,
			MaxInflight: *tenantInflight,
			Engine:      cfg,
			HTTP:        server.Config{MaxBatchBytes: *maxBatchBytes},
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("serving tenants %v on %s (max %d resident, %d in flight per tenant)",
			ts.Tenants(), *addr, *maxTenants, *tenantInflight)
		if err := serve(ctx, *addr, ts, *shutdownGrace); err != nil {
			log.Fatal(err)
		}
		if err := ts.Close(); err != nil {
			log.Printf("closing tenants: %v", err)
		}
		log.Printf("shutdown complete")
		return
	}

	var eng *soi.Engine
	var err error
	if *live {
		// Live mode builds through the ingest path so POST /api/pois can
		// append and publish; a mmap snapshot has no mutable corpus to
		// seed, so -index stays read-only.
		if *indexPath != "" {
			log.Fatal("-live is not supported with -index (snapshots serve read-only)")
		}
		eng, err = buildLiveEngine(*city, *scale, *dataDir, soi.LiveConfig{
			Config:       cfg,
			BatchSize:    *batchSize,
			CompactAfter: *compactAfter,
			SnapshotPath: *snapshotPath,
		})
	} else {
		eng, err = buildEngine(*city, *scale, *dataDir, *indexPath, cfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	eng.Warm(soi.DefaultCellSize)
	mode := "read-only"
	if *live {
		mode = fmt.Sprintf("live (epoch %d)", eng.Epoch())
	}
	log.Printf("serving %d streets, %d POIs, %d photos on %s, %s",
		eng.NumStreets(), eng.NumPOIs(), eng.NumPhotos(), *addr, mode)

	if err := serve(ctx, *addr, newHandler(eng, *maxBatchBytes), *shutdownGrace); err != nil {
		log.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		log.Printf("closing engine: %v", err)
	}
	log.Printf("shutdown complete")
}

// serve runs the HTTP server until ctx is cancelled (SIGINT/SIGTERM),
// then drains in-flight requests via http.Server.Shutdown for up to
// grace before closing the remainder. A clean drain returns nil, so the
// process exits 0 under orchestrated restarts.
func serve(ctx context.Context, addr string, handler http.Handler, grace time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return serveListener(ctx, ln, handler, grace)
}

// serveListener is serve over an established listener (separated so the
// shutdown sequence is testable on an ephemeral port).
func serveListener(ctx context.Context, ln net.Listener, handler http.Handler, grace time.Duration) error {
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("signal received, draining in-flight requests (grace %v)", grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// The grace period elapsed with requests still in flight; close
		// them and report the forced stop.
		srv.Close()
		return fmt.Errorf("graceful shutdown incomplete: %w", err)
	}
	return <-errc
}

func buildEngine(city string, scale float64, dataDir, indexPath string, cfg soi.Config) (*soi.Engine, error) {
	switch {
	case indexPath != "":
		// A snapshot is served memory-mapped: no index build, near-instant
		// startup, bit-identical answers to a fresh build of the same data.
		return soi.NewEngineFromSnapshot(indexPath, cfg)
	case dataDir != "":
		return loadEngine(dataDir, cfg)
	case city != "":
		var p datagen.Profile
		switch strings.ToLower(city) {
		case "london":
			p = datagen.London()
		case "berlin":
			p = datagen.Berlin()
		case "vienna":
			p = datagen.Vienna()
		case "small":
			p = datagen.Small(1)
		default:
			return nil, fmt.Errorf("unknown city %q", city)
		}
		ds, err := datagen.Generate(datagen.Scale(p, scale))
		if err != nil {
			return nil, err
		}
		return soi.NewEngineFromCorpora(ds.Network, ds.POIs, ds.Photos, cfg)
	default:
		return nil, fmt.Errorf("provide -city, -data or -index")
	}
}

// buildLiveEngine is buildEngine for -live: same dataset sources minus
// snapshots, built through the epoch-based ingest path.
func buildLiveEngine(city string, scale float64, dataDir string, cfg soi.LiveConfig) (*soi.Engine, error) {
	switch {
	case dataDir != "":
		net, pois, photos, _, err := dataio.LoadDir(dataDir)
		if err != nil {
			return nil, err
		}
		return soi.NewLiveEngineFromCorpora(net, pois, photos, cfg)
	case city != "":
		var p datagen.Profile
		switch strings.ToLower(city) {
		case "london":
			p = datagen.London()
		case "berlin":
			p = datagen.Berlin()
		case "vienna":
			p = datagen.Vienna()
		case "small":
			p = datagen.Small(1)
		default:
			return nil, fmt.Errorf("unknown city %q", city)
		}
		ds, err := datagen.Generate(datagen.Scale(p, scale))
		if err != nil {
			return nil, err
		}
		return soi.NewLiveEngineFromCorpora(ds.Network, ds.POIs, ds.Photos, cfg)
	default:
		return nil, fmt.Errorf("provide -city or -data with -live")
	}
}

func loadEngine(dir string, cfg soi.Config) (*soi.Engine, error) {
	net, pois, photos, _, err := dataio.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	return soi.NewEngineFromCorpora(net, pois, photos, cfg)
}

// newHandler wires the HTTP routes (internal/server).
func newHandler(eng *soi.Engine, maxBatchBytes int64) http.Handler {
	return server.NewWithConfig(eng, server.Config{MaxBatchBytes: maxBatchBytes})
}

// remoteOptions groups the -shard-addrs mode's knobs.
type remoteOptions struct {
	addrs          string
	manifest       string
	replicas       int
	attemptTimeout time.Duration
	retries        int
	hedgeDelay     time.Duration
	breakerFails   int
	breakerOpen    time.Duration
}

// buildRemoteHandler wires the remote scatter-gather serving mode: a
// fault-tolerant shard client, a remote coordinator, and the HTTP
// handler set. With a manifest the shard count and ε ceiling come from
// disk; otherwise they are fetched from shard 0's /shard/meta. Either
// way every shard's metadata is cross-checked against its address so a
// swapped address list fails at startup, not at query time.
func buildRemoteHandler(ctx context.Context, opt remoteOptions) (http.Handler, func(), error) {
	addrs, err := remote.ParseAddrs(opt.addrs)
	if err != nil {
		return nil, nil, err
	}
	if opt.replicas > 0 {
		for i, reps := range addrs {
			if len(reps) != opt.replicas {
				return nil, nil, fmt.Errorf("shard %d has %d replica addresses, -replicas requires %d", i, len(reps), opt.replicas)
			}
		}
	}
	var halo float64
	if opt.manifest != "" {
		m, err := shard.LoadManifest(opt.manifest)
		if err != nil {
			return nil, nil, err
		}
		if len(m.Shards) != len(addrs) {
			return nil, nil, fmt.Errorf("manifest has %d shards, -shard-addrs lists %d", len(m.Shards), len(addrs))
		}
		halo = m.Halo
	}
	rec := stats.NewRecorder()
	client, err := remote.NewClient(remote.Config{
		Addrs:          addrs,
		AttemptTimeout: opt.attemptTimeout,
		MaxAttempts:    opt.retries,
		HedgeDelay:     opt.hedgeDelay,
		Breaker:        remote.BreakerConfig{Failures: opt.breakerFails, OpenFor: opt.breakerOpen},
		Recorder:       rec,
	})
	if err != nil {
		return nil, nil, err
	}
	for i := range addrs {
		m, err := client.Meta(ctx, i)
		if err != nil {
			// A shard being down at startup is an availability fault, not a
			// config error: serve anyway and let the breaker/degradation
			// machinery handle it.
			log.Printf("shard %d meta unavailable at startup: %v", i, err)
			continue
		}
		if m.Shard != i {
			return nil, nil, fmt.Errorf("address list position %d serves shard %d (swapped -shard-addrs?)", i, m.Shard)
		}
		if m.Shards != len(addrs) {
			return nil, nil, fmt.Errorf("shard %d belongs to a %d-shard world, -shard-addrs lists %d", i, m.Shards, len(addrs))
		}
		if halo == 0 {
			halo = m.Halo
		}
	}
	coord := shard.NewRemoteCoordinator(client, halo)
	log.Printf("serving remote scatter-gather over %d shards (halo %v)", len(addrs), halo)
	handler := server.NewRemoteServer(server.RemoteConfig{
		Coordinator: coord,
		Recorder:    rec,
		Breakers:    client.BreakerStates,
	})
	return handler, client.Close, nil
}
