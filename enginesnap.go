package soi

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/snapshot"
)

// NewEngineFromSnapshot builds an engine from a prebuilt index snapshot
// (a .soi file written by soibuild, soigen -snapshot or WriteSnapshot).
// The file is memory-mapped where the platform allows: startup does no
// index construction, the slab arrays are served straight from the page
// cache, and unread sections never touch memory. Config.GridCellSize is
// ignored — the snapshot's slab fixes the cell size.
//
// The returned engine holds the mapping open; call Close when done with
// it. Engines built by the other constructors need no Close.
func NewEngineFromSnapshot(path string, cfg Config) (*Engine, error) {
	snap, m, err := snapshot.Open(path)
	if err != nil {
		return nil, err
	}
	ix, err := core.NewIndexFromSlab(snap.Net, snap.POIs, snap.Slab)
	if err != nil {
		m.Close()
		return nil, fmt.Errorf("soi: rebuilding index from %s: %w", path, err)
	}
	eng := newEngineWithIndex(snap.Net, snap.POIs, snap.Photos, snap.POIs.Dict(), ix, cfg)
	eng.mapping = m
	return eng, nil
}

// WriteSnapshot persists the engine's dataset and compact index as a
// snapshot file, written atomically. An engine later opened from the
// file with NewEngineFromSnapshot answers every query bit-identically.
func (e *Engine) WriteSnapshot(path string) error {
	if e.ing != nil {
		return fmt.Errorf("soi: live engines persist snapshots through compaction (LiveConfig.SnapshotPath)")
	}
	six := e.index.SlabIndex()
	if six == nil {
		return fmt.Errorf("soi: engine has no compact index to snapshot")
	}
	return snapshot.WriteFile(path, &snapshot.Snapshot{
		Net:    e.net,
		POIs:   e.pois,
		Photos: e.photos,
		Slab:   six.Slab(),
	})
}

// Close releases the file mapping behind a snapshot-loaded engine and,
// for a live engine, stops the background publisher/compactor. It must
// not be called while queries are still in flight. For plain in-memory
// engines it is a no-op.
func (e *Engine) Close() error {
	if e.ing != nil {
		if err := e.ing.Close(); err != nil {
			return err
		}
	}
	if e.mapping == nil {
		return nil
	}
	m := e.mapping
	e.mapping = nil
	return m.Close()
}
